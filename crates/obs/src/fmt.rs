//! Shared human-readable rendering of a profiled run: the one formatter
//! behind `twillc --profile`, `twill-bench profile`, and the compare
//! report, so every surface prints the same header, stall/utilization
//! table, and compiler-stage timing section.

use crate::metrics::SimMetrics;
use crate::span::Span;
use crate::timeseries::Timeline;
use std::fmt::Write as _;

/// Compiler-side timing data to append to a profile report: the stage
/// execution spans plus the `StageCounts` run/hit totals.
#[derive(Debug, Clone, Copy)]
pub struct StageSection<'a> {
    pub spans: &'a [Span],
    /// Stage executions (cache misses — the work actually done).
    pub runs: usize,
    /// Demands answered from a memoization cache.
    pub hits: usize,
}

/// Render one run's profile: `=== title (N cycles) ===`, the per-thread
/// stall/utilization table, and (when provided) the wall-clock compiler
/// stage timings.
pub fn profile_report(title: &str, m: &SimMetrics, stages: Option<StageSection<'_>>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ({} cycles) ===", m.cycles);
    out.push_str(&m.profile_table());
    if let Some(s) = stages {
        out.push_str("compiler stages (wall clock):\n");
        for span in s.spans {
            let _ = writeln!(out, "  {:<10} {:>9.2} ms", span.name, span.dur_ns as f64 / 1e6);
        }
        let _ = writeln!(out, "  {} stage run(s), {} cache hit(s)", s.runs, s.hits);
    }
    out
}

/// Render a sampled timeline as a per-interval table: one row per sample
/// window, the dominant stall class of each thread, and each queue's
/// occupancy level at the window's close. The quick terminal view of the
/// same data the Perfetto counter tracks plot.
pub fn timeline_table(t: &Timeline) -> String {
    use crate::timeseries::CLASS_NAMES;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== timeline ({} interval(s) of {} cycles over {} cycles) ===",
        t.intervals.len(),
        t.sample_interval,
        t.total_cycles()
    );
    let _ = write!(out, "{:>20}", "cycles");
    for n in &t.thread_names {
        let _ = write!(out, " {n:>14}");
    }
    for n in &t.queue_names {
        let _ = write!(out, " {:>8}", format!("{n} occ"));
    }
    out.push('\n');
    for iv in &t.intervals {
        let _ = write!(out, "{:>20}", format!("{}..{}", iv.start, iv.end));
        for b in &iv.threads {
            let a = b.as_array();
            let mut best = 0;
            for (i, &v) in a.iter().enumerate() {
                if v > a[best] {
                    best = i;
                }
            }
            let _ = write!(out, " {:>14}", CLASS_NAMES[best]);
        }
        for q in &iv.queues {
            let _ = write!(out, " {:>8}", q.occupancy);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultMetrics, ThreadMetrics};

    fn metrics() -> SimMetrics {
        SimMetrics {
            cycles: 500,
            threads: vec![ThreadMetrics {
                name: "cpu".into(),
                busy: 400,
                idle: 100,
                ..Default::default()
            }],
            queues: vec![],
            dropped_events: 0,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn header_table_and_stage_section() {
        let spans = [Span { name: "dswp".into(), start_ns: 0, dur_ns: 2_500_000 }];
        let r = profile_report(
            "aes",
            &metrics(),
            Some(StageSection { spans: &spans, runs: 3, hits: 1 }),
        );
        assert!(r.starts_with("=== aes (500 cycles) ==="), "{r}");
        assert!(r.contains("busy%"), "{r}");
        assert!(r.contains("dswp"), "{r}");
        assert!(r.contains("2.50 ms"), "{r}");
        assert!(r.contains("3 stage run(s), 1 cache hit(s)"), "{r}");
    }

    #[test]
    fn stage_section_is_optional() {
        let r = profile_report("aes", &metrics(), None);
        assert!(!r.contains("compiler stages"), "{r}");
    }

    #[test]
    fn timeline_table_rows_per_interval() {
        use crate::timeseries::{Interval, QueueWindow, Timeline};
        let t = Timeline {
            sample_interval: 100,
            thread_names: vec!["cpu".into()],
            queue_names: vec!["q0".into()],
            intervals: vec![
                Interval {
                    start: 1,
                    end: 100,
                    threads: vec![crate::CycleBreakdown { busy: 100, ..Default::default() }],
                    queues: vec![QueueWindow { occupancy: 3, ..Default::default() }],
                },
                Interval {
                    start: 101,
                    end: 150,
                    threads: vec![crate::CycleBreakdown { queue_empty: 50, ..Default::default() }],
                    queues: vec![QueueWindow { occupancy: 0, ..Default::default() }],
                },
            ],
        };
        let r = timeline_table(&t);
        assert!(r.contains("2 interval(s) of 100 cycles over 150 cycles"), "{r}");
        assert!(r.contains("1..100"), "{r}");
        assert!(r.contains("queue-empty"), "{r}");
        assert_eq!(r.lines().count(), 4, "{r}");
    }
}
