//! Aggregate simulation metrics: per-thread stall attribution, per-queue
//! occupancy statistics, and bottleneck (critical pipeline stage)
//! identification.
//!
//! These are computed from counters the simulator keeps unconditionally
//! (plain pre-allocated integers — no tracing required), so metrics are
//! available for every run; the event trace is only needed for the
//! timeline view.

use crate::json;
use std::fmt::Write as _;

/// Where one simulated agent's cycles went. Every cycle of the run falls
/// in exactly one class, so the fields sum to the run's total cycle count
/// (the accounting invariant `twill-rt` asserts in debug builds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadMetrics {
    /// Track name (`cpu`, `hw1`, …).
    pub name: String,
    /// Executing instructions, issuing ops, or burning an op's service
    /// latency.
    pub busy: u64,
    /// Blocked: enqueue on a full queue.
    pub queue_full: u64,
    /// Blocked: dequeue on an empty queue.
    pub queue_empty: u64,
    /// Blocked: semaphore lower at zero.
    pub sem: u64,
    /// Blocked: waiting for a memory-bus grant.
    pub mem_bus: u64,
    /// Blocked: waiting for a module-bus grant.
    pub module_bus: u64,
    /// Finished (or never started) while the rest of the system ran.
    pub idle: u64,
}

impl ThreadMetrics {
    pub fn total(&self) -> u64 {
        self.busy
            + self.queue_full
            + self.queue_empty
            + self.sem
            + self.mem_bus
            + self.module_bus
            + self.idle
    }

    /// Cycles blocked on any resource.
    pub fn stalled(&self) -> u64 {
        self.queue_full + self.queue_empty + self.sem + self.mem_bus + self.module_bus
    }

    /// Busy fraction of the whole run.
    pub fn utilization(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.busy as f64 / t as f64
        }
    }

    /// `(class name, cycles)` of the largest stall class.
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        let classes = [
            ("queue-full", self.queue_full),
            ("queue-empty", self.queue_empty),
            ("sem", self.sem),
            ("mem-bus", self.mem_bus),
            ("module-bus", self.module_bus),
        ];
        classes.into_iter().max_by_key(|&(_, n)| n).unwrap()
    }
}

/// One queue's lifetime statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueMetrics {
    pub name: String,
    pub depth: u32,
    pub pushes: u64,
    pub pops: u64,
    /// High-water mark: peak simultaneous occupancy.
    pub high_water: u32,
    /// Producer-side blocked attempts (one per blocked cycle).
    pub full_stalls: u64,
    /// Consumer-side blocked attempts.
    pub empty_stalls: u64,
    /// Event-sampled occupancy histogram: `occupancy_hist[n]` counts the
    /// push/pop completions that left the queue holding `n` values.
    pub occupancy_hist: Vec<u64>,
}

impl QueueMetrics {
    /// Mean occupancy over the sampled events.
    pub fn mean_occupancy(&self) -> f64 {
        let samples: u64 = self.occupancy_hist.iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 =
            self.occupancy_hist.iter().enumerate().map(|(occ, &n)| occ as u64 * n).sum();
        weighted as f64 / samples as f64
    }
}

/// Counts of injected faults by class (all zero unless a fault plan was
/// configured — the fault layer is strictly opt-in).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Queue payloads that had a bit flipped in flight.
    pub bit_flips: u64,
    /// Queue messages silently lost between producer and consumer.
    pub drops: u64,
    /// Queue messages delivered twice.
    pub dups: u64,
    /// Transient hardware-thread stalls injected.
    pub stalls: u64,
    /// Single-event upsets applied to shared memory.
    pub mem_upsets: u64,
}

impl FaultMetrics {
    pub fn total(&self) -> u64 {
        self.bit_flips + self.drops + self.dups + self.stalls + self.mem_upsets
    }
}

/// The full metrics report for one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    pub cycles: u64,
    pub threads: Vec<ThreadMetrics>,
    pub queues: Vec<QueueMetrics>,
    /// Trace events lost to the ring-buffer bound (0 when tracing was
    /// disabled or nothing was dropped).
    pub dropped_events: u64,
    /// Injected-fault counters (zero without a fault plan).
    pub faults: FaultMetrics,
}

/// A compact per-sweep-point digest (what the experiment runner records
/// for every point of a parameter sweep).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    pub cycles: u64,
    /// Busy fraction per thread, in track order.
    pub utilization: Vec<f64>,
    /// Fraction of all thread-cycles spent blocked on a resource.
    pub stall_fraction: f64,
    /// Name of the largest stall class across all threads.
    pub dominant_stall: &'static str,
    /// Index of the throughput-bounding thread.
    pub critical_thread: usize,
    pub max_queue_high_water: u32,
}

impl SimMetrics {
    /// The DSWP pipeline stage that bounds throughput: in a decoupled
    /// pipeline every stage runs for the whole execution, so the stage
    /// with the most busy cycles is the one the others wait on (its
    /// upstream neighbours see full queues, its downstream ones empty
    /// queues).
    pub fn critical_thread(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .max_by_key(|(i, t)| (t.busy, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
    }

    pub fn summary(&self) -> MetricsSummary {
        let total: u64 = self.threads.iter().map(|t| t.total()).sum();
        let stalled: u64 = self.threads.iter().map(|t| t.stalled()).sum();
        let mut agg = ThreadMetrics::default();
        for t in &self.threads {
            agg.queue_full += t.queue_full;
            agg.queue_empty += t.queue_empty;
            agg.sem += t.sem;
            agg.mem_bus += t.mem_bus;
            agg.module_bus += t.module_bus;
        }
        MetricsSummary {
            cycles: self.cycles,
            utilization: self.threads.iter().map(|t| t.utilization()).collect(),
            stall_fraction: if total == 0 { 0.0 } else { stalled as f64 / total as f64 },
            dominant_stall: agg.dominant_stall().0,
            critical_thread: self.critical_thread().unwrap_or(0),
            max_queue_high_water: self.queues.iter().map(|q| q.high_water).max().unwrap_or(0),
        }
    }

    /// Serialize as a JSON document (parse it back with [`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(out, "  \"dropped_events\": {},", self.dropped_events);
        if self.faults.total() > 0 {
            // Only emitted when faults were injected: unfaulted runs keep
            // producing byte-identical documents (e.g. the committed
            // baseline), and `from_json` defaults a missing block to zero.
            let f = &self.faults;
            let _ = writeln!(
                out,
                "  \"faults\": {{\"bit_flips\": {}, \"drops\": {}, \"dups\": {}, \
                 \"stalls\": {}, \"mem_upsets\": {}}},",
                f.bit_flips, f.drops, f.dups, f.stalls, f.mem_upsets,
            );
        }
        let _ = writeln!(
            out,
            "  \"critical_thread\": {},",
            self.critical_thread().map(|i| i.to_string()).unwrap_or_else(|| "null".into())
        );
        out.push_str("  \"threads\": [\n");
        for (i, t) in self.threads.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"busy\": {}, \"queue_full\": {}, \"queue_empty\": {}, \
                 \"sem\": {}, \"mem_bus\": {}, \"module_bus\": {}, \"idle\": {}, \
                 \"utilization\": {}}}",
                json::quote(&t.name),
                t.busy,
                t.queue_full,
                t.queue_empty,
                t.sem,
                t.mem_bus,
                t.module_bus,
                t.idle,
                json::number(t.utilization()),
            );
            out.push_str(if i + 1 < self.threads.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"queues\": [\n");
        for (i, q) in self.queues.iter().enumerate() {
            let hist: Vec<String> = q.occupancy_hist.iter().map(|n| n.to_string()).collect();
            let _ = write!(
                out,
                "    {{\"name\": {}, \"depth\": {}, \"pushes\": {}, \"pops\": {}, \
                 \"high_water\": {}, \"full_stalls\": {}, \"empty_stalls\": {}, \
                 \"mean_occupancy\": {}, \"occupancy_hist\": [{}]}}",
                json::quote(&q.name),
                q.depth,
                q.pushes,
                q.pops,
                q.high_water,
                q.full_stalls,
                q.empty_stalls,
                json::number(self_mean(q)),
                hist.join(", "),
            );
            out.push_str(if i + 1 < self.queues.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a metrics document produced by [`SimMetrics::to_json`] (or
    /// embedded in a baseline file) back into a `SimMetrics`. Derived
    /// fields (`utilization`, `mean_occupancy`, `critical_thread`) are
    /// recomputed, not read.
    pub fn from_json(doc: &json::Json) -> Result<SimMetrics, String> {
        let u64_field = |obj: &json::Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("metrics: missing or non-integer field {key:?}"))
        };
        let str_field = |obj: &json::Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("metrics: missing or non-string field {key:?}"))
        };
        let mut m = SimMetrics {
            cycles: u64_field(doc, "cycles")?,
            dropped_events: u64_field(doc, "dropped_events")?,
            ..Default::default()
        };
        // Optional block: documents written before fault injection existed
        // (and unfaulted runs) simply omit it.
        if let Some(f) = doc.get("faults") {
            m.faults = FaultMetrics {
                bit_flips: u64_field(f, "bit_flips")?,
                drops: u64_field(f, "drops")?,
                dups: u64_field(f, "dups")?,
                stalls: u64_field(f, "stalls")?,
                mem_upsets: u64_field(f, "mem_upsets")?,
            };
        }
        for t in doc.get("threads").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            m.threads.push(ThreadMetrics {
                name: str_field(t, "name")?,
                busy: u64_field(t, "busy")?,
                queue_full: u64_field(t, "queue_full")?,
                queue_empty: u64_field(t, "queue_empty")?,
                sem: u64_field(t, "sem")?,
                mem_bus: u64_field(t, "mem_bus")?,
                module_bus: u64_field(t, "module_bus")?,
                idle: u64_field(t, "idle")?,
            });
        }
        for q in doc.get("queues").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            let hist = q
                .get("occupancy_hist")
                .and_then(|v| v.as_arr())
                .ok_or("metrics: queue missing occupancy_hist")?
                .iter()
                .map(|n| n.as_u64().ok_or("metrics: non-integer histogram bin"))
                .collect::<Result<Vec<u64>, _>>()?;
            m.queues.push(QueueMetrics {
                name: str_field(q, "name")?,
                depth: u64_field(q, "depth")? as u32,
                pushes: u64_field(q, "pushes")?,
                pops: u64_field(q, "pops")?,
                high_water: u64_field(q, "high_water")? as u32,
                full_stalls: u64_field(q, "full_stalls")?,
                empty_stalls: u64_field(q, "empty_stalls")?,
                occupancy_hist: hist,
            });
        }
        Ok(m)
    }

    /// Render as Prometheus text exposition format (version 0.0.4) — the
    /// scrape body a sweep service would serve for this run. Counter
    /// samples carry `_total` suffixes; derived gauges (`utilization`) are
    /// recomputed from the raw counters, never stored.
    pub fn metrics_text(&self) -> String {
        let esc = json::prom_label;
        let mut out = String::new();
        out.push_str("# HELP twill_cycles_total Simulated cycles of the run.\n");
        out.push_str("# TYPE twill_cycles_total counter\n");
        let _ = writeln!(out, "twill_cycles_total {}", self.cycles);
        out.push_str(
            "# HELP twill_thread_cycles_total Per-thread cycle attribution by stall class.\n",
        );
        out.push_str("# TYPE twill_thread_cycles_total counter\n");
        for t in &self.threads {
            let classes = [
                ("busy", t.busy),
                ("queue_full", t.queue_full),
                ("queue_empty", t.queue_empty),
                ("sem", t.sem),
                ("mem_bus", t.mem_bus),
                ("module_bus", t.module_bus),
                ("idle", t.idle),
            ];
            for (class, n) in classes {
                let _ = writeln!(
                    out,
                    "twill_thread_cycles_total{{thread=\"{}\",class=\"{class}\"}} {n}",
                    esc(&t.name)
                );
            }
        }
        out.push_str("# HELP twill_thread_utilization Busy fraction of the run per thread.\n");
        out.push_str("# TYPE twill_thread_utilization gauge\n");
        for t in &self.threads {
            let _ = writeln!(
                out,
                "twill_thread_utilization{{thread=\"{}\"}} {}",
                esc(&t.name),
                json::number(t.utilization())
            );
        }
        out.push_str("# HELP twill_queue_events_total Queue lifetime event counts.\n");
        out.push_str("# TYPE twill_queue_events_total counter\n");
        for q in &self.queues {
            let events = [
                ("push", q.pushes),
                ("pop", q.pops),
                ("full_stall", q.full_stalls),
                ("empty_stall", q.empty_stalls),
            ];
            for (event, n) in events {
                let _ = writeln!(
                    out,
                    "twill_queue_events_total{{queue=\"{}\",event=\"{event}\"}} {n}",
                    esc(&q.name)
                );
            }
        }
        out.push_str("# HELP twill_queue_pushes_total Values pushed per queue.\n");
        out.push_str("# TYPE twill_queue_pushes_total counter\n");
        for q in &self.queues {
            let _ = writeln!(
                out,
                "twill_queue_pushes_total{{queue=\"{}\"}} {}",
                esc(&q.name),
                q.pushes
            );
        }
        out.push_str(
            "# HELP twill_queue_stall_cycles_total Producer (full) and consumer (empty) \
             blocked cycles per queue.\n",
        );
        out.push_str("# TYPE twill_queue_stall_cycles_total counter\n");
        for q in &self.queues {
            for (kind, n) in [("full", q.full_stalls), ("empty", q.empty_stalls)] {
                let _ = writeln!(
                    out,
                    "twill_queue_stall_cycles_total{{queue=\"{}\",kind=\"{kind}\"}} {n}",
                    esc(&q.name)
                );
            }
        }
        out.push_str("# HELP twill_queue_depth Declared queue capacity.\n");
        out.push_str("# TYPE twill_queue_depth gauge\n");
        for q in &self.queues {
            let _ = writeln!(out, "twill_queue_depth{{queue=\"{}\"}} {}", esc(&q.name), q.depth);
        }
        out.push_str("# HELP twill_queue_high_water Peak simultaneous queue occupancy.\n");
        out.push_str("# TYPE twill_queue_high_water gauge\n");
        for q in &self.queues {
            let _ = writeln!(
                out,
                "twill_queue_high_water{{queue=\"{}\",depth=\"{}\"}} {}",
                esc(&q.name),
                q.depth,
                q.high_water
            );
        }
        out.push_str(
            "# HELP twill_dropped_events_total Trace events lost to the ring-buffer bound.\n",
        );
        out.push_str("# TYPE twill_dropped_events_total counter\n");
        let _ = writeln!(out, "twill_dropped_events_total {}", self.dropped_events);
        out.push_str("# HELP twill_faults_total Injected faults by class.\n");
        out.push_str("# TYPE twill_faults_total counter\n");
        let faults = [
            ("bit_flip", self.faults.bit_flips),
            ("drop", self.faults.drops),
            ("dup", self.faults.dups),
            ("stall", self.faults.stalls),
            ("mem_upset", self.faults.mem_upsets),
        ];
        for (class, n) in faults {
            let _ = writeln!(out, "twill_faults_total{{class=\"{class}\"}} {n}");
        }
        out
    }

    /// The `twillc --profile` stall/utilization table.
    pub fn profile_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>7} {:>8} {:>9} {:>7} {:>8} {:>8} {:>7}",
            "thread", "cycles", "busy%", "q-full%", "q-empty%", "sem%", "mem%", "bus%", "idle%"
        );
        let pct = |n: u64, d: u64| if d == 0 { 0.0 } else { 100.0 * n as f64 / d as f64 };
        for t in &self.threads {
            let d = t.total();
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>7.1} {:>8.1} {:>9.1} {:>7.1} {:>8.1} {:>8.1} {:>7.1}",
                t.name,
                d,
                pct(t.busy, d),
                pct(t.queue_full, d),
                pct(t.queue_empty, d),
                pct(t.sem, d),
                pct(t.mem_bus, d),
                pct(t.module_bus, d),
                pct(t.idle, d),
            );
        }
        if let Some(c) = self.critical_thread() {
            let t = &self.threads[c];
            let _ = writeln!(
                out,
                "critical stage: {} ({:.1}% busy — bounds pipeline throughput)",
                t.name,
                100.0 * t.utilization()
            );
        }
        if !self.queues.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<6} {:>6} {:>10} {:>10} {:>5} {:>12} {:>13} {:>9}",
                "queue",
                "depth",
                "pushes",
                "pops",
                "peak",
                "full-stalls",
                "empty-stalls",
                "mean-occ"
            );
            for q in &self.queues {
                let _ = writeln!(
                    out,
                    "{:<6} {:>6} {:>10} {:>10} {:>5} {:>12} {:>13} {:>9.2}",
                    q.name,
                    q.depth,
                    q.pushes,
                    q.pops,
                    q.high_water,
                    q.full_stalls,
                    q.empty_stalls,
                    q.mean_occupancy(),
                );
            }
        }
        if self.faults.total() > 0 {
            let f = &self.faults;
            let _ = writeln!(
                out,
                "\nfaults injected: {} (bit-flips {}, drops {}, dups {}, stalls {}, \
                 mem-upsets {})",
                f.total(),
                f.bit_flips,
                f.drops,
                f.dups,
                f.stalls,
                f.mem_upsets,
            );
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "\ntrace truncated: {} events dropped", self.dropped_events);
        }
        out
    }
}

fn self_mean(q: &QueueMetrics) -> f64 {
    q.mean_occupancy()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimMetrics {
        SimMetrics {
            cycles: 100,
            threads: vec![
                ThreadMetrics {
                    name: "cpu".into(),
                    busy: 40,
                    queue_full: 10,
                    queue_empty: 20,
                    sem: 0,
                    mem_bus: 0,
                    module_bus: 5,
                    idle: 25,
                },
                ThreadMetrics {
                    name: "hw1".into(),
                    busy: 90,
                    queue_full: 0,
                    queue_empty: 5,
                    sem: 0,
                    mem_bus: 5,
                    module_bus: 0,
                    idle: 0,
                },
            ],
            queues: vec![QueueMetrics {
                name: "q0".into(),
                depth: 8,
                pushes: 50,
                pops: 50,
                high_water: 6,
                full_stalls: 10,
                empty_stalls: 20,
                occupancy_hist: vec![10, 20, 30, 40, 0, 0, 0, 0, 0],
            }],
            dropped_events: 3,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn accounting_totals_and_utilization() {
        let m = sample();
        assert_eq!(m.threads[0].total(), 100);
        assert_eq!(m.threads[0].stalled(), 35);
        assert!((m.threads[1].utilization() - 0.9).abs() < 1e-12);
        assert_eq!(m.threads[0].dominant_stall(), ("queue-empty", 20));
    }

    #[test]
    fn critical_thread_is_busiest() {
        let m = sample();
        assert_eq!(m.critical_thread(), Some(1));
        assert_eq!(SimMetrics::default().critical_thread(), None);
    }

    #[test]
    fn mean_occupancy_weighted() {
        let m = sample();
        // (0*10 + 1*20 + 2*30 + 3*40) / 100 = 2.0
        assert!((m.queues[0].mean_occupancy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_parses_back_with_all_sections() {
        let m = sample();
        let doc = crate::json::parse(&m.to_json()).expect("metrics JSON must parse");
        assert_eq!(doc.get("cycles").unwrap().as_u64(), Some(100));
        assert_eq!(doc.get("dropped_events").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("critical_thread").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("threads").unwrap().as_arr().unwrap().len(), 2);
        let q = &doc.get("queues").unwrap().as_arr().unwrap()[0];
        assert_eq!(q.get("high_water").unwrap().as_u64(), Some(6));
        assert_eq!(q.get("occupancy_hist").unwrap().as_arr().unwrap().len(), 9);
    }

    #[test]
    fn json_round_trips_to_equal_metrics() {
        let m = sample();
        let doc = crate::json::parse(&m.to_json()).unwrap();
        assert_eq!(SimMetrics::from_json(&doc).unwrap(), m);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let doc = crate::json::parse(r#"{"cycles": 10}"#).unwrap();
        let err = SimMetrics::from_json(&doc).unwrap_err();
        assert!(err.contains("dropped_events"), "{err}");
    }

    #[test]
    fn faults_round_trip_and_default_when_missing() {
        let mut m = sample();
        // Unfaulted runs emit no "faults" block (baseline stays stable).
        assert!(!m.to_json().contains("\"faults\""));
        m.faults = FaultMetrics { bit_flips: 1, drops: 2, dups: 3, stalls: 4, mem_upsets: 5 };
        assert_eq!(m.faults.total(), 15);
        let doc = crate::json::parse(&m.to_json()).unwrap();
        assert_eq!(SimMetrics::from_json(&doc).unwrap(), m);
        assert!(m.profile_table().contains("faults injected: 15"));
        // Pre-fault-layer documents parse with zeroed counters.
        let old = crate::json::parse(r#"{"cycles": 1, "dropped_events": 0}"#).unwrap();
        assert_eq!(SimMetrics::from_json(&old).unwrap().faults.total(), 0);
    }

    #[test]
    fn profile_table_mentions_critical_stage_and_truncation() {
        let t = sample().profile_table();
        assert!(t.contains("critical stage: hw1"));
        assert!(t.contains("3 events dropped"));
        assert!(t.lines().next().unwrap().contains("busy%"));
    }

    #[test]
    fn metrics_text_is_valid_prometheus_exposition() {
        let t = sample().metrics_text();
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in t.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (sample, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!sample.is_empty());
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in {line:?}");
        }
        assert!(t.contains("twill_cycles_total 100\n"));
        assert!(t.contains("twill_thread_cycles_total{thread=\"cpu\",class=\"queue_empty\"} 20\n"));
        assert!(t.contains("twill_thread_utilization{thread=\"hw1\"} 0.9\n"));
        assert!(t.contains("twill_queue_events_total{queue=\"q0\",event=\"full_stall\"} 10\n"));
        assert!(t.contains("twill_queue_high_water{queue=\"q0\",depth=\"8\"} 6\n"));
        assert!(t.contains("twill_dropped_events_total 3\n"));
        assert!(t.contains("twill_faults_total{class=\"drop\"} 0\n"));
        // Each # TYPE header appears before its first sample.
        let type_pos = t.find("# TYPE twill_queue_depth gauge").unwrap();
        let sample_pos = t.find("twill_queue_depth{").unwrap();
        assert!(type_pos < sample_pos);
    }

    #[test]
    fn metrics_text_exposes_per_queue_families() {
        let t = sample().metrics_text();
        assert!(t.contains("twill_queue_pushes_total{queue=\"q0\"} 50\n"));
        assert!(t.contains("twill_queue_stall_cycles_total{queue=\"q0\",kind=\"full\"} 10\n"));
        assert!(t.contains("twill_queue_stall_cycles_total{queue=\"q0\",kind=\"empty\"} 20\n"));
        // Each new family carries its HELP/TYPE headers before the samples.
        for fam in ["twill_queue_pushes_total", "twill_queue_stall_cycles_total"] {
            let type_pos = t.find(&format!("# TYPE {fam} counter")).unwrap();
            let sample_pos = t.find(&format!("{fam}{{")).unwrap();
            assert!(type_pos < sample_pos, "{fam}: TYPE header after first sample");
        }
    }

    #[test]
    fn metrics_text_escapes_label_values() {
        let mut m = sample();
        m.threads[0].name = "cp\"u\\x".into();
        assert!(m.metrics_text().contains("thread=\"cp\\\"u\\\\x\""));
    }

    #[test]
    fn summary_digest() {
        let s = sample().summary();
        assert_eq!(s.cycles, 100);
        assert_eq!(s.critical_thread, 1);
        assert_eq!(s.max_queue_high_water, 6);
        assert_eq!(s.dominant_stall, "queue-empty");
        assert!((s.stall_fraction - 45.0 / 200.0).abs() < 1e-12);
    }
}
