//! Line-granular source profile: per-instruction cycle attribution folded
//! up to C source lines.
//!
//! The simulator (`twill-rt`) attributes every agent cycle to the
//! instruction occupying it; this module receives those samples as plain
//! data — thread name, function name, source line, printed instruction —
//! and aggregates them into the reports a user actually reads:
//!
//! * a top-N stall-site table ("where do the cycles go, and why"),
//! * folded-stack lines for flamegraph tooling,
//! * a per-line annotation gutter over the original C source,
//! * a per-line regression hint for the metrics diff engine.
//!
//! Line 0 marks synthetic work with no source counterpart (runtime
//! startup, context switches, compiler-invented glue).

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stall-class cycle breakdown for one attribution site (field order
/// matches [`crate::diff::CLASS_NAMES`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    pub busy: u64,
    pub queue_full: u64,
    pub queue_empty: u64,
    pub sem: u64,
    pub mem_bus: u64,
    pub module_bus: u64,
    pub idle: u64,
}

impl CycleBreakdown {
    pub fn total(&self) -> u64 {
        self.busy
            + self.queue_full
            + self.queue_empty
            + self.sem
            + self.mem_bus
            + self.module_bus
            + self.idle
    }

    /// Cycles lost to stalls (everything but busy work and idling).
    pub fn stalled(&self) -> u64 {
        self.queue_full + self.queue_empty + self.sem + self.mem_bus + self.module_bus
    }

    pub fn add(&mut self, o: &CycleBreakdown) {
        self.busy += o.busy;
        self.queue_full += o.queue_full;
        self.queue_empty += o.queue_empty;
        self.sem += o.sem;
        self.mem_bus += o.mem_bus;
        self.module_bus += o.module_bus;
        self.idle += o.idle;
    }

    /// Values in [`crate::diff::CLASS_NAMES`] order.
    pub fn as_array(&self) -> [u64; 7] {
        [
            self.busy,
            self.queue_full,
            self.queue_empty,
            self.sem,
            self.mem_bus,
            self.module_bus,
            self.idle,
        ]
    }

    /// The stall class (name, cycles) that dominates this site's waiting,
    /// or `("busy", busy)` when the site never stalls.
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        let stalls = [
            ("queue-full", self.queue_full),
            ("queue-empty", self.queue_empty),
            ("sem", self.sem),
            ("mem-bus", self.mem_bus),
            ("module-bus", self.module_bus),
        ];
        let best = stalls.iter().max_by_key(|(_, v)| *v).copied().unwrap();
        if best.1 == 0 {
            ("busy", self.busy)
        } else {
            best
        }
    }
}

/// One attribution site: a (thread, function, line, instruction) tuple and
/// the cycles it accounts for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSample {
    /// Simulator track name (`cpu`, `hw1`, …).
    pub thread: String,
    /// Function the instruction lives in; "<runtime>" for overhead cycles
    /// not tied to any instruction.
    pub func: String,
    /// 1-based C source line; 0 = synthetic (no source counterpart).
    pub line: u32,
    /// Printed IR instruction, empty for overhead pseudo-sites.
    pub inst: String,
    pub cycles: CycleBreakdown,
}

/// A whole run's attribution, aggregable along the
/// thread → function → line → instruction hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceProfile {
    /// Program/module name (report headers, folded-stack roots).
    pub name: String,
    pub samples: Vec<SiteSample>,
}

impl SourceProfile {
    /// Total cycles attributed to each thread, in first-seen order.
    pub fn thread_totals(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.samples {
            if !totals.contains_key(s.thread.as_str()) {
                order.push(s.thread.clone());
            }
            *totals.entry(s.thread.as_str()).or_default() += s.cycles.total();
        }
        order.into_iter().map(|t| (t.clone(), totals[t.as_str()])).collect()
    }

    /// Cycle breakdown per source line, summed across threads and
    /// instructions (line 0 collects synthetic work).
    pub fn line_table(&self) -> BTreeMap<u32, CycleBreakdown> {
        let mut table: BTreeMap<u32, CycleBreakdown> = BTreeMap::new();
        for s in &self.samples {
            table.entry(s.line).or_default().add(&s.cycles);
        }
        table
    }

    /// The `n` sites losing the most cycles to stalls, most-stalled first.
    /// Ties break deterministically on (thread, func, line, inst).
    pub fn top_stall_sites(&self, n: usize) -> Vec<&SiteSample> {
        let mut sites: Vec<&SiteSample> =
            self.samples.iter().filter(|s| s.cycles.stalled() > 0).collect();
        sites.sort_by(|a, b| {
            b.cycles.stalled().cmp(&a.cycles.stalled()).then_with(|| {
                (&a.thread, &a.func, a.line, &a.inst).cmp(&(&b.thread, &b.func, b.line, &b.inst))
            })
        });
        sites.truncate(n);
        sites
    }

    /// The source line carrying the most cycles (line 0 excluded).
    pub fn hottest_line(&self) -> Option<(u32, u64)> {
        self.line_table()
            .into_iter()
            .filter(|(l, _)| *l != 0)
            .map(|(l, c)| (l, c.total()))
            .max_by_key(|&(l, t)| (t, std::cmp::Reverse(l)))
    }

    /// Folded-stack lines for flamegraph tooling: one
    /// `thread;func;line:N cycles` frame stack per site, deterministic
    /// order, synthetic sites folded as `line:?`.
    pub fn folded_stacks(&self) -> String {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.samples {
            let total = s.cycles.total();
            if total == 0 {
                continue;
            }
            let frame = if s.line == 0 {
                format!("{};{};line:?", s.thread, s.func)
            } else {
                format!("{};{};line:{}", s.thread, s.func, s.line)
            };
            *folded.entry(frame).or_default() += total;
        }
        let mut out = String::new();
        for (frame, cycles) in folded {
            let _ = writeln!(out, "{frame} {cycles}");
        }
        out
    }

    /// Annotate the original C source with a per-line cycle gutter:
    /// `cycles | dominant-stall-class | source text`. Lines without
    /// attributed cycles get an empty gutter; attributed lines beyond the
    /// end of `src` (and synthetic line-0 work) are appended as a
    /// trailer so no cycles silently vanish from the report.
    pub fn annotate_source(&self, src: &str) -> String {
        let table = self.line_table();
        let mut out = String::new();
        let _ = writeln!(out, "{:>12} {:>12}   source ({})", "cycles", "stall", self.name);
        let mut max_line = 0u32;
        for (ln, text) in src.lines().enumerate() {
            let ln = ln as u32 + 1;
            max_line = ln;
            match table.get(&ln) {
                Some(c) if c.total() > 0 => {
                    let (class, _) = c.dominant_stall();
                    let _ = writeln!(out, "{:>12} {:>12} | {}", c.total(), class, text);
                }
                _ => {
                    let _ = writeln!(out, "{:>12} {:>12} | {}", "", "", text);
                }
            }
        }
        let stragglers: Vec<(u32, &CycleBreakdown)> = table
            .iter()
            .filter(|(l, c)| (**l == 0 || **l > max_line) && c.total() > 0)
            .map(|(l, c)| (*l, c))
            .collect();
        if !stragglers.is_empty() {
            let _ = writeln!(out, "---");
            for (l, c) in stragglers {
                if l == 0 {
                    let _ = writeln!(out, "{:>12} {:>12} | <synthetic/runtime>", c.total(), "");
                } else {
                    let _ =
                        writeln!(out, "{:>12} {:>12} | <line {} beyond source>", c.total(), "", l);
                }
            }
        }
        out
    }

    /// Human-readable top-N stall-site report.
    pub fn report(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "top stall sites ({})", self.name);
        let sites = self.top_stall_sites(n);
        if sites.is_empty() {
            let _ = writeln!(out, "  (no stalled cycles attributed)");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:>10} {:>12} {:<6} {:<10} {:<14} inst",
            "stalled", "class", "thread", "func", "line"
        );
        for s in sites {
            let (class, _) = s.cycles.dominant_stall();
            let line = if s.line == 0 { "-".to_string() } else { s.line.to_string() };
            let _ = writeln!(
                out,
                "  {:>10} {:>12} {:<6} {:<10} {:<14} {}",
                s.cycles.stalled(),
                class,
                s.thread,
                s.func,
                line,
                s.inst
            );
        }
        out
    }

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json::quote(&self.name));
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let c = s.cycles.as_array().map(|v| v.to_string()).join(", ");
            let _ = write!(
                out,
                "    {{\"thread\": {}, \"func\": {}, \"line\": {}, \"inst\": {}, \"cycles\": [{}]}}",
                json::quote(&s.thread),
                json::quote(&s.func),
                s.line,
                json::quote(&s.inst),
                c
            );
            out.push_str(if i + 1 < self.samples.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn from_json(doc: &Json) -> Result<SourceProfile, String> {
        let name =
            doc.get("name").and_then(|v| v.as_str()).ok_or("profile: missing name")?.to_string();
        let mut samples = Vec::new();
        for s in doc.get("samples").and_then(|v| v.as_arr()).ok_or("profile: missing samples")? {
            let cyc = s.get("cycles").and_then(|v| v.as_arr()).ok_or("sample: missing cycles")?;
            if cyc.len() != 7 {
                return Err("sample: cycles must have 7 entries".into());
            }
            let get = |i: usize| cyc[i].as_u64().ok_or("sample: bad cycle count");
            samples.push(SiteSample {
                thread: s
                    .get("thread")
                    .and_then(|v| v.as_str())
                    .ok_or("sample: missing thread")?
                    .to_string(),
                func: s
                    .get("func")
                    .and_then(|v| v.as_str())
                    .ok_or("sample: missing func")?
                    .to_string(),
                line: s.get("line").and_then(|v| v.as_u64()).ok_or("sample: missing line")? as u32,
                inst: s
                    .get("inst")
                    .and_then(|v| v.as_str())
                    .ok_or("sample: missing inst")?
                    .to_string(),
                cycles: CycleBreakdown {
                    busy: get(0)?,
                    queue_full: get(1)?,
                    queue_empty: get(2)?,
                    sem: get(3)?,
                    mem_bus: get(4)?,
                    module_bus: get(5)?,
                    idle: get(6)?,
                },
            });
        }
        Ok(SourceProfile { name, samples })
    }
}

/// The single source line whose total cycles grew the most between two
/// profiles (the "regression comes from line N" hint for `compare`).
/// Returns `None` when no line regressed. Line 0 (synthetic) is reported
/// last-resort only if no real line regressed.
pub fn line_regression(base: &SourceProfile, new: &SourceProfile) -> Option<(u32, i64)> {
    let b = base.line_table();
    let n = new.line_table();
    let mut deltas: BTreeMap<u32, i64> = BTreeMap::new();
    for (l, c) in &n {
        *deltas.entry(*l).or_default() += c.total() as i64;
    }
    for (l, c) in &b {
        *deltas.entry(*l).or_default() -= c.total() as i64;
    }
    let pick = |synthetic: bool| {
        deltas
            .iter()
            .filter(|(l, d)| (**l == 0) == synthetic && **d > 0)
            .max_by_key(|(l, d)| (**d, std::cmp::Reverse(**l)))
            .map(|(l, d)| (*l, *d))
    };
    pick(false).or_else(|| pick(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(thread: &str, func: &str, line: u32, inst: &str, busy: u64, qe: u64) -> SiteSample {
        SiteSample {
            thread: thread.into(),
            func: func.into(),
            line,
            inst: inst.into(),
            cycles: CycleBreakdown { busy, queue_empty: qe, ..Default::default() },
        }
    }

    fn profile() -> SourceProfile {
        SourceProfile {
            name: "blowfish".into(),
            samples: vec![
                sample("cpu", "main", 4, "%1 = load i32 %0", 100, 0),
                sample("cpu", "main", 5, "%2 = dequeue i32 q0", 10, 400),
                sample("hw1", "main.p1", 5, "enqueue q0, %3", 50, 0),
                sample("hw1", "main.p1", 0, "", 7, 0),
            ],
        }
    }

    #[test]
    fn line_table_aggregates_across_threads() {
        let t = profile().line_table();
        assert_eq!(t[&4].total(), 100);
        assert_eq!(t[&5].total(), 460);
        assert_eq!(t[&0].total(), 7);
    }

    #[test]
    fn top_stall_sites_ranked_by_stalled_cycles() {
        let p = profile();
        let top = p.top_stall_sites(3);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].line, 5);
        assert_eq!(top[0].cycles.dominant_stall().0, "queue-empty");
    }

    #[test]
    fn folded_stacks_are_deterministic_and_complete() {
        let p = profile();
        let folded = p.folded_stacks();
        assert!(folded.contains("cpu;main;line:4 100\n"));
        assert!(folded.contains("cpu;main;line:5 410\n"));
        assert!(folded.contains("hw1;main.p1;line:5 50\n"));
        assert!(folded.contains("hw1;main.p1;line:? 7\n"));
        let total: u64 =
            folded.lines().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
        assert_eq!(total, p.samples.iter().map(|s| s.cycles.total()).sum::<u64>());
    }

    #[test]
    fn annotation_places_cycles_in_the_gutter() {
        let src = "int main() {\n  int x = 0;\n  x += 1;\n  use(x);\n  poll(x);\n}\n";
        let ann = profile().annotate_source(src);
        let l4 = ann.lines().nth(4).unwrap(); // header + 3 source lines
        assert!(l4.contains("100"), "line 4 gutter: {l4}");
        assert!(l4.contains("use(x);"));
        assert!(ann.contains("<synthetic/runtime>"));
    }

    #[test]
    fn json_roundtrip_preserves_samples() {
        let p = profile();
        let doc = crate::json::parse(&p.to_json()).unwrap();
        let back = SourceProfile::from_json(&doc).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn regression_hint_names_the_worst_line() {
        let base = profile();
        let mut new = profile();
        new.samples[1].cycles.queue_empty += 5000; // line 5 regresses
        assert_eq!(line_regression(&base, &new), Some((5, 5000)));
        assert_eq!(line_regression(&base, &base), None);
    }
}
