//! Minimal JSON support: an append-style writer used by the exporters and
//! a small recursive-descent parser used by tests (and anyone who wants to
//! read a metrics file back). The build environment is offline, so this
//! replaces `serde_json` for the tiny subset the project needs.

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// The single string-escaping core shared by every exporter: [`quote`]
/// (JSON strings in the metrics/trace/timeline writers) and [`prom_label`]
/// (Prometheus label values). `full_json` additionally escapes `\r`, `\t`,
/// and remaining control characters as `\uXXXX`; the Prometheus text
/// exposition format defines only the `\\`, `\"`, and `\n` escapes, so
/// label values pass everything else through verbatim.
fn escape_into(out: &mut String, s: &str, full_json: bool) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' if full_json => out.push_str("\\r"),
            '\t' if full_json => out.push_str("\\t"),
            c if full_json && (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s, true);
    out.push('"');
    out
}

/// Escape a Prometheus label value (no surrounding quotes; the caller
/// supplies them as part of the `name{label="..."}` sample syntax).
pub fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s, false);
    out
}

/// Format an `f64` as a JSON number (finite values only; non-finite maps
/// to 0 so the output always parses).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always valid).
                    let rest =
                        std::str::from_utf8(&self.b[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), r#""\u0001""#);
    }

    #[test]
    fn prom_label_escapes_only_the_prometheus_set() {
        assert_eq!(prom_label(r#"cp"u\x"#), r#"cp\"u\\x"#);
        assert_eq!(prom_label("a\nb"), "a\\nb");
        // Tab and other controls are not part of the exposition format's
        // escape set and must pass through untouched.
        assert_eq!(prom_label("a\tb"), "a\tb");
        assert_eq!(prom_label("plain"), "plain");
    }

    #[test]
    fn number_formats_integers_exactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-17.0), "-17");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "0");
    }

    #[test]
    fn parse_round_trips_typical_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"s": "x\ny", "t": true, "n": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn quoted_strings_parse_back() {
        for s in ["", "plain", "q\"w\\e", "tab\tnl\n", "ünïcode"] {
            let doc = format!("{{{}: {}}}", quote("k"), quote(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "{doc}");
        }
    }
}
