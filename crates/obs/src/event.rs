//! The typed simulator event model.
//!
//! Events are small `Copy` records keyed by (cycle, track): a *track* is
//! one simulated agent — track 0 is the soft CPU (or the single hardware
//! thread of a pure-HW run), tracks 1.. are hardware threads. Resource
//! ids (queues, semaphores) are plain indices so this crate stays
//! dependency-free; `twill-rt` converts its `QueueId`/`SemId` newtypes at
//! the recording site.

/// Classification of a runtime operation (what a slice on a thread track
/// represents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Enqueue,
    Dequeue,
    SemRaise,
    SemLower,
    MemLoad,
    MemStore,
    Out,
    In,
}

impl OpClass {
    /// Stable lowercase name (used as the Perfetto slice name).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Enqueue => "enqueue",
            OpClass::Dequeue => "dequeue",
            OpClass::SemRaise => "sem_raise",
            OpClass::SemLower => "sem_lower",
            OpClass::MemLoad => "mem_load",
            OpClass::MemStore => "mem_store",
            OpClass::Out => "out",
            OpClass::In => "in",
        }
    }
}

/// Classification of an injected fault (mirrors `twill-rt`'s fault model;
/// plain so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A queue payload had one bit flipped in flight.
    QueueBitFlip,
    /// A queue message was silently lost between producer and consumer.
    QueueDrop,
    /// A queue message was delivered twice.
    QueueDup,
    /// A hardware thread was frozen for N cycles.
    HwStall,
    /// A single-event upset flipped one bit of shared memory.
    MemUpset,
}

impl FaultClass {
    /// Stable lowercase name (used in Perfetto instants and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::QueueBitFlip => "queue-bit-flip",
            FaultClass::QueueDrop => "queue-drop",
            FaultClass::QueueDup => "queue-dup",
            FaultClass::HwStall => "hw-stall",
            FaultClass::MemUpset => "mem-upset",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A runtime/memory operation was issued on this track.
    OpStart { op: OpClass },
    /// The operation completed (closes the matching [`EventKind::OpStart`]).
    OpRetire { op: OpClass },
    /// The operation was cancelled before completing (the CPU scheduler
    /// switched out a resource-blocked thread; the op had no effect and
    /// will be reissued). Also closes the matching `OpStart`.
    OpCancel { op: OpClass },
    /// A value entered a queue; `occupancy` is the fill level afterwards.
    QueuePush { queue: u16, occupancy: u32 },
    /// A value left a queue; `occupancy` is the fill level afterwards.
    QueuePop { queue: u16, occupancy: u32 },
    /// An operation began stalling on a queue (`full`: producer blocked on
    /// a full queue; otherwise consumer blocked on an empty one). Recorded
    /// once per stall episode, not per blocked cycle.
    QueueStall { queue: u16, full: bool },
    /// An operation began stalling on a semaphore lower.
    SemWait { sem: u16 },
    /// A semaphore changed value (raise or completed lower).
    SemSignal { sem: u16, value: u32 },
    /// The CPU's hardware scheduler switched the active software thread.
    ContextSwitch { to: u16 },
    /// A word was written to the output stream.
    Output { value: i32 },
    /// The fault layer injected a fault. `unit` names the affected
    /// resource: the queue index for queue faults, the agent index for
    /// stalls, the byte address for memory upsets.
    Fault { fault: FaultClass, unit: u32 },
}

/// One traced occurrence: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub cycle: u64,
    /// Agent index (0 = CPU / first agent, 1.. = hardware threads).
    pub track: u16,
    pub kind: EventKind,
}

/// Render events as readable text, one per line (the debugging fallback
/// when a Perfetto UI is not at hand).
pub fn format_events(events: &[Event]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for e in events {
        let _ = write!(out, "{:>10}  t{}  ", e.cycle, e.track);
        let _ = match e.kind {
            EventKind::OpStart { op } => writeln!(out, "start   {}", op.name()),
            EventKind::OpRetire { op } => writeln!(out, "retire  {}", op.name()),
            EventKind::OpCancel { op } => writeln!(out, "cancel  {}", op.name()),
            EventKind::QueuePush { queue, occupancy } => {
                writeln!(out, "push    q{queue}  occupancy={occupancy}")
            }
            EventKind::QueuePop { queue, occupancy } => {
                writeln!(out, "pop     q{queue}  occupancy={occupancy}")
            }
            EventKind::QueueStall { queue, full } => {
                writeln!(out, "stall   q{queue}  {}", if full { "full" } else { "empty" })
            }
            EventKind::SemWait { sem } => writeln!(out, "wait    sem{sem}"),
            EventKind::SemSignal { sem, value } => writeln!(out, "signal  sem{sem} -> {value}"),
            EventKind::ContextSwitch { to } => writeln!(out, "switch  -> sw-thread {to}"),
            EventKind::Output { value } => writeln!(out, "out     {value}"),
            EventKind::Fault { fault, unit } => {
                writeln!(out, "fault   {} unit={unit}", fault.name())
            }
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_is_one_line_per_event() {
        let events = [
            Event { cycle: 1, track: 0, kind: EventKind::OpStart { op: OpClass::Enqueue } },
            Event { cycle: 3, track: 0, kind: EventKind::QueuePush { queue: 0, occupancy: 1 } },
            Event { cycle: 3, track: 0, kind: EventKind::OpRetire { op: OpClass::Enqueue } },
            Event { cycle: 9, track: 1, kind: EventKind::Output { value: -7 } },
        ];
        let text = format_events(&events);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("push    q0"));
        assert!(text.contains("out     -7"));
    }

    #[test]
    fn fault_events_render_class_and_unit() {
        let events = [
            Event {
                cycle: 5,
                track: 1,
                kind: EventKind::Fault { fault: FaultClass::QueueDrop, unit: 2 },
            },
            Event {
                cycle: 6,
                track: 0,
                kind: EventKind::Fault { fault: FaultClass::MemUpset, unit: 0x2000 },
            },
        ];
        let text = format_events(&events);
        assert!(text.contains("fault   queue-drop unit=2"), "{text}");
        assert!(text.contains("fault   mem-upset unit=8192"), "{text}");
    }
}
