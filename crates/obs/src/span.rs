//! Wall-clock spans for compiler-side work (BuildGraph stages).
//!
//! Spans share one process-wide epoch so that spans recorded by different
//! graphs (or threads) line up on a single Perfetto timeline. Simulator
//! events are in *cycles*, not nanoseconds, so the exporter places them in
//! a separate Perfetto process group rather than pretending the units
//! match.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide observability epoch (the first call
/// wins; monotonic thereafter).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One completed unit of compiler work on the wall-clock timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`frontend`, `passes`, `dswp`, `hls`, `verilog`, …).
    pub name: String,
    /// Start, nanoseconds since [`now_ns`]'s epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl Span {
    /// Time `f`, returning its result plus the recorded span.
    pub fn record<T>(name: &str, f: impl FnOnce() -> T) -> (T, Span) {
        let start_ns = now_ns();
        let value = f();
        let dur_ns = now_ns().saturating_sub(start_ns);
        (value, Span { name: name.to_string(), start_ns, dur_ns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn record_measures_and_returns() {
        let (v, s) = Span::record("stage", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(v, 42);
        assert_eq!(s.name, "stage");
        assert!(s.dur_ns >= 1_000_000, "slept 2ms but span was {}ns", s.dur_ns);
    }

    #[test]
    fn spans_order_on_shared_epoch() {
        let (_, a) = Span::record("first", || ());
        let (_, b) = Span::record("second", || ());
        assert!(b.start_ns >= a.start_ns + a.dur_ns);
    }
}
