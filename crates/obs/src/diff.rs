//! Differential profiling: explain *why* two runs of the same program
//! took a different number of cycles.
//!
//! [`diff`] compares two [`SimMetrics`] (typically a committed baseline
//! entry and a fresh run) and attributes the total cycle delta to cycle
//! classes on the **critical timeline**: in a real simulation every
//! agent's class counters sum to the run's cycle count (the accounting
//! invariant `twill-rt` asserts), so the per-class deltas of any one
//! thread decompose the wall-time change exactly. We pick the thread that
//! is busiest *across both runs* — the one that bounds pipeline
//! throughput — so the attribution names the classes that actually moved
//! the finish line. The choice is symmetric in its arguments, which gives
//! the algebra the regression tests lean on:
//!
//! * `diff(a, a)` is all-zero,
//! * the attribution deltas sum to the total cycle delta,
//! * `diff(a, b)` is the negation of `diff(b, a)`.
//!
//! Per-queue stall/traffic deltas and the critical-stage shift ride along
//! as supporting detail; when the two runs do not even have the same
//! thread or queue sets (a different partitioning, not a perf change) the
//! diff reports a structural change instead of pretending the counters
//! line up.

use crate::json;
use crate::metrics::{SimMetrics, ThreadMetrics};
use std::fmt::Write as _;

/// The seven cycle classes, in `ThreadMetrics` field order.
pub const CLASS_NAMES: [&str; 7] =
    ["busy", "queue-full", "queue-empty", "sem", "mem-bus", "module-bus", "idle"];

fn classes_of(t: &ThreadMetrics) -> [u64; 7] {
    [t.busy, t.queue_full, t.queue_empty, t.sem, t.mem_bus, t.module_bus, t.idle]
}

/// One cycle class' contribution to the total cycle delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDelta {
    pub class: &'static str,
    pub delta: i64,
}

/// Per-thread, per-class cycle deltas (indices follow [`CLASS_NAMES`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDelta {
    pub name: String,
    pub deltas: [i64; 7],
}

/// One queue's stall/traffic change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueDelta {
    pub name: String,
    pub full_stalls: i64,
    pub empty_stalls: i64,
    pub high_water: i64,
    pub pushes: i64,
    pub pops: i64,
}

impl QueueDelta {
    /// Largest stall movement on this queue (ranking key).
    pub fn magnitude(&self) -> i64 {
        self.full_stalls.abs().max(self.empty_stalls.abs())
    }

    pub fn is_zero(&self) -> bool {
        self.full_stalls == 0
            && self.empty_stalls == 0
            && self.high_water == 0
            && self.pushes == 0
            && self.pops == 0
    }
}

/// The full explanation of `new` relative to `base`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDiff {
    pub base_cycles: u64,
    pub new_cycles: u64,
    /// `new.cycles - base.cycles`.
    pub cycle_delta: i64,
    /// The thread/queue sets differ: the runs are different *designs*
    /// (e.g. a partitioning change), so per-counter attribution is
    /// meaningless and `attribution` carries one `structural-change`
    /// entry holding the whole delta.
    pub structural: bool,
    /// Ranked (|delta| descending) cycle-class attribution on the
    /// critical timeline; sums to `cycle_delta`.
    pub attribution: Vec<ClassDelta>,
    /// The thread whose timeline the attribution decomposes.
    pub attribution_thread: Option<String>,
    /// Per-thread class deltas for every matched thread (unranked).
    pub threads: Vec<ThreadDelta>,
    /// Per-queue deltas, ranked by stall movement, zero rows dropped.
    pub queues: Vec<QueueDelta>,
    /// Critical (busiest) stage of each run.
    pub critical_before: Option<String>,
    pub critical_after: Option<String>,
    pub dropped_events_delta: i64,
}

/// The pseudo-class used when the two runs are structurally different.
pub const STRUCTURAL_CLASS: &str = "structural-change";

/// Compare two metric reports; see the module docs for semantics.
pub fn diff(base: &SimMetrics, new: &SimMetrics) -> MetricsDiff {
    let cycle_delta = new.cycles as i64 - base.cycles as i64;
    let same_threads = base.threads.len() == new.threads.len()
        && base.threads.iter().zip(&new.threads).all(|(a, b)| a.name == b.name);
    let same_queues = base.queues.len() == new.queues.len()
        && base.queues.iter().zip(&new.queues).all(|(a, b)| a.name == b.name);
    let structural = !(same_threads && same_queues);

    let critical = |m: &SimMetrics| m.critical_thread().map(|i| m.threads[i].name.clone());

    let mut threads = Vec::new();
    let mut attribution = Vec::new();
    let mut attribution_thread = None;
    let mut queues = Vec::new();

    if structural {
        attribution.push(ClassDelta { class: STRUCTURAL_CLASS, delta: cycle_delta });
    } else {
        for (a, b) in base.threads.iter().zip(&new.threads) {
            let (ca, cb) = (classes_of(a), classes_of(b));
            let mut deltas = [0i64; 7];
            for i in 0..7 {
                deltas[i] = cb[i] as i64 - ca[i] as i64;
            }
            threads.push(ThreadDelta { name: a.name.clone(), deltas });
        }
        // Critical timeline: the thread busiest across both runs. Using
        // the *sum* of busy cycles keeps the pick symmetric in (base,
        // new), so diff(a, b) mirrors diff(b, a) exactly.
        let k = base
            .threads
            .iter()
            .zip(&new.threads)
            .enumerate()
            .max_by_key(|(i, (a, b))| (a.busy + b.busy, std::cmp::Reverse(*i)))
            .map(|(i, _)| i);
        if let Some(k) = k {
            attribution_thread = Some(new.threads[k].name.clone());
            attribution = CLASS_NAMES
                .iter()
                .zip(threads[k].deltas)
                .map(|(&class, delta)| ClassDelta { class, delta })
                .collect();
            // Rank by magnitude; class order breaks ties so the ranking
            // is deterministic and direction-independent.
            attribution.sort_by_key(|c| std::cmp::Reverse(c.delta.abs()));
        }
        for (a, b) in base.queues.iter().zip(&new.queues) {
            let q = QueueDelta {
                name: a.name.clone(),
                full_stalls: b.full_stalls as i64 - a.full_stalls as i64,
                empty_stalls: b.empty_stalls as i64 - a.empty_stalls as i64,
                high_water: b.high_water as i64 - a.high_water as i64,
                pushes: b.pushes as i64 - a.pushes as i64,
                pops: b.pops as i64 - a.pops as i64,
            };
            if !q.is_zero() {
                queues.push(q);
            }
        }
        queues.sort_by(|a, b| b.magnitude().cmp(&a.magnitude()).then(a.name.cmp(&b.name)));
    }

    MetricsDiff {
        base_cycles: base.cycles,
        new_cycles: new.cycles,
        cycle_delta,
        structural,
        attribution,
        attribution_thread,
        threads,
        queues,
        critical_before: critical(base),
        critical_after: critical(new),
        dropped_events_delta: new.dropped_events as i64 - base.dropped_events as i64,
    }
}

/// `+12.4k` / `-317` style signed human-readable count.
pub fn human_delta(n: i64) -> String {
    let sign = if n < 0 { "-" } else { "+" };
    let a = n.unsigned_abs();
    if a >= 10_000_000 {
        format!("{sign}{:.1}M", a as f64 / 1e6)
    } else if a >= 10_000 {
        format!("{sign}{:.1}k", a as f64 / 1e3)
    } else {
        format!("{sign}{a}")
    }
}

impl MetricsDiff {
    pub fn is_zero(&self) -> bool {
        self.cycle_delta == 0
            && !self.structural
            && self.attribution.iter().all(|c| c.delta == 0)
            && self.threads.iter().all(|t| t.deltas.iter().all(|&d| d == 0))
            && self.queues.is_empty()
    }

    /// Relative cycle change, e.g. `3.1` for +3.1%.
    pub fn percent(&self) -> f64 {
        if self.base_cycles == 0 {
            0.0
        } else {
            100.0 * self.cycle_delta as f64 / self.base_cycles as f64
        }
    }

    /// One-line headline: `"blowfish hybrid +3.1%: q2 full-stalls +12.4k,
    /// critical stage moved hw1→cpu"`.
    pub fn headline(&self, label: &str) -> String {
        let mut s = format!("{label} {:+.1}%", self.percent());
        let mut causes = Vec::new();
        if self.structural {
            causes.push("structural change (thread/queue sets differ)".to_string());
        } else {
            if let Some(q) = self.queues.first() {
                let (kind, n) = if q.full_stalls.abs() >= q.empty_stalls.abs() {
                    ("full-stalls", q.full_stalls)
                } else {
                    ("empty-stalls", q.empty_stalls)
                };
                causes.push(format!("{} {kind} {}", q.name, human_delta(n)));
            }
            if let Some(c) = self.attribution.iter().find(|c| c.delta != 0) {
                let t = self.attribution_thread.as_deref().unwrap_or("?");
                causes.push(format!("{t} {} {}", c.class, human_delta(c.delta)));
            }
        }
        if self.critical_before != self.critical_after {
            causes.push(format!(
                "critical stage moved {}\u{2192}{}",
                self.critical_before.as_deref().unwrap_or("-"),
                self.critical_after.as_deref().unwrap_or("-"),
            ));
        }
        if causes.is_empty() {
            causes.push("no counter movement".to_string());
        }
        let _ = write!(s, ": {}", causes.join(", "));
        s
    }

    /// The full ranked human-readable explanation.
    pub fn render_text(&self, label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{label}: {} \u{2192} {} cycles ({}, {:+.2}%)",
            self.base_cycles,
            self.new_cycles,
            human_delta(self.cycle_delta),
            self.percent()
        );
        if self.structural {
            let _ = writeln!(
                out,
                "  structural change: thread/queue sets differ; counters are not comparable"
            );
            return out;
        }
        if let Some(t) = &self.attribution_thread {
            let _ = writeln!(out, "  attribution (critical timeline {t}):");
            for c in &self.attribution {
                if c.delta != 0 {
                    let _ = writeln!(out, "    {:<12} {:>12}", c.class, human_delta(c.delta));
                }
            }
            if self.attribution.iter().all(|c| c.delta == 0) {
                let _ = writeln!(out, "    (no movement)");
            }
        }
        if self.critical_before != self.critical_after {
            let _ = writeln!(
                out,
                "  critical stage: {} \u{2192} {}",
                self.critical_before.as_deref().unwrap_or("-"),
                self.critical_after.as_deref().unwrap_or("-"),
            );
        }
        if !self.queues.is_empty() {
            let _ = writeln!(out, "  queues:");
            for q in &self.queues {
                let _ = writeln!(
                    out,
                    "    {}: full-stalls {}, empty-stalls {}, peak {}, pushes {}",
                    q.name,
                    human_delta(q.full_stalls),
                    human_delta(q.empty_stalls),
                    human_delta(q.high_water),
                    human_delta(q.pushes),
                );
            }
        }
        if self.dropped_events_delta != 0 {
            let _ = writeln!(out, "  dropped events: {}", human_delta(self.dropped_events_delta));
        }
        out
    }

    /// `render_text` plus the source-line attribution hint, for callers
    /// that captured line-granular profiles of both runs (see
    /// [`crate::profile::line_regression`]): names the single source line
    /// whose cycles grew the most, e.g. "regression comes from line 42 of
    /// blowfish.c".
    pub fn render_text_with_line_hint(
        &self,
        label: &str,
        hint: Option<(&str, u32, i64)>,
    ) -> String {
        let mut out = self.render_text(label);
        if let Some((file, line, delta)) = hint {
            let _ = writeln!(
                out,
                "  regression comes from line {line} of {file} ({} cycles)",
                human_delta(delta)
            );
        }
        out
    }

    /// Machine-readable form of the same explanation (parses back with
    /// [`crate::json`]).
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"label\": {},", json::quote(label));
        let _ = writeln!(out, "  \"base_cycles\": {},", self.base_cycles);
        let _ = writeln!(out, "  \"new_cycles\": {},", self.new_cycles);
        let _ = writeln!(out, "  \"cycle_delta\": {},", self.cycle_delta);
        let _ = writeln!(out, "  \"percent\": {},", json::number(self.percent()));
        let _ = writeln!(out, "  \"structural\": {},", self.structural);
        let _ = writeln!(
            out,
            "  \"attribution_thread\": {},",
            self.attribution_thread.as_deref().map(json::quote).unwrap_or_else(|| "null".into())
        );
        out.push_str("  \"attribution\": [");
        for (i, c) in self.attribution.iter().enumerate() {
            let sep = if i + 1 < self.attribution.len() { ", " } else { "" };
            let _ =
                write!(out, "{{\"class\": {}, \"delta\": {}}}{sep}", json::quote(c.class), c.delta);
        }
        out.push_str("],\n  \"threads\": [\n");
        for (i, t) in self.threads.iter().enumerate() {
            let _ = write!(out, "    {{\"name\": {}", json::quote(&t.name));
            for (class, d) in CLASS_NAMES.iter().zip(t.deltas) {
                let _ = write!(out, ", {}: {}", json::quote(class), d);
            }
            out.push('}');
            out.push_str(if i + 1 < self.threads.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"queues\": [\n");
        for (i, q) in self.queues.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"full_stalls\": {}, \"empty_stalls\": {}, \
                 \"high_water\": {}, \"pushes\": {}, \"pops\": {}}}",
                json::quote(&q.name),
                q.full_stalls,
                q.empty_stalls,
                q.high_water,
                q.pushes,
                q.pops,
            );
            out.push_str(if i + 1 < self.queues.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let quote_opt =
            |v: &Option<String>| v.as_deref().map(json::quote).unwrap_or_else(|| "null".into());
        let _ = writeln!(out, "  \"critical_before\": {},", quote_opt(&self.critical_before));
        let _ = writeln!(out, "  \"critical_after\": {},", quote_opt(&self.critical_after));
        let _ = writeln!(out, "  \"dropped_events_delta\": {}", self.dropped_events_delta);
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Per-phase attribution (temporal layer)
// ---------------------------------------------------------------------------

/// One aligned phase pair in a base-vs-new comparison: how much of the
/// total cycle delta this position of the phase sequence contributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseDelta {
    /// Position in the aligned phase sequence (0-based).
    pub index: usize,
    /// Cycle range of the base run's phase (None when the new run grew an
    /// extra phase at this position).
    pub base: Option<(u64, u64)>,
    /// Cycle range of the new run's phase (None when the base run had a
    /// phase the new run no longer does).
    pub new: Option<(u64, u64)>,
    /// New duration minus base duration; the deltas of all entries sum
    /// exactly to the total cycle delta because phases tile each run.
    pub delta: i64,
    /// Dominant thread (from the new phase when present, else the base).
    pub thread: String,
    /// Dominant stall class.
    pub class: String,
    /// Responsible queue, when the class is a queue stall.
    pub queue: Option<String>,
    /// Hottest function/line of the dominant pair (when annotated).
    pub func: Option<String>,
    pub line: u32,
}

/// Align two segmented timelines positionally and attribute the cycle
/// delta per phase. Phases partition `[1, total_cycles]` in each run, so
/// positional duration differences decompose the total delta exactly —
/// including when the runs have different phase counts (extra new phases
/// contribute their full duration, vanished base phases subtract theirs).
pub fn phase_attribution(
    base: &crate::phase::PhaseReport,
    new: &crate::phase::PhaseReport,
) -> Vec<PhaseDelta> {
    let n = base.phases.len().max(new.phases.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let b = base.phases.get(i);
        let w = new.phases.get(i);
        let b_cycles = b.map(|p| p.cycles() as i64).unwrap_or(0);
        let w_cycles = w.map(|p| p.cycles() as i64).unwrap_or(0);
        // Describe by the new run's phase when it exists (that is where
        // the cycles are being spent now), else by the vanished base one.
        let desc = w.or(b).expect("i < max(len, len)");
        out.push(PhaseDelta {
            index: i,
            base: b.map(|p| (p.start, p.end)),
            new: w.map(|p| (p.start, p.end)),
            delta: w_cycles - b_cycles,
            thread: desc.thread.clone(),
            class: desc.class.clone(),
            queue: desc.queue.clone(),
            func: desc.func.clone(),
            line: desc.line,
        });
    }
    out
}

/// Render the per-phase attribution, leading with the ISSUE-style
/// headline that names the phase responsible for the largest share of the
/// regression: "the +41k cycles come from phase 2 of 5 (cycles
/// 120000..310000, queue-full on q2, line 41)".
pub fn render_phase_attribution(deltas: &[PhaseDelta], cycle_delta: i64) -> String {
    let mut out = String::new();
    let Some(worst) = deltas.iter().max_by_key(|d| (d.delta, std::cmp::Reverse(d.index))) else {
        return out;
    };
    if worst.delta != 0 {
        let range =
            worst.new.or(worst.base).map(|(s, e)| format!("cycles {s}..{e}")).unwrap_or_default();
        let mut cause = format!("{} on {}", worst.class, worst.thread);
        if let Some(q) = &worst.queue {
            let _ = write!(cause, " ({q})");
        }
        if worst.line != 0 {
            let _ = write!(cause, ", line {}", worst.line);
            if let Some(f) = &worst.func {
                let _ = write!(cause, " in {f}");
            }
        }
        let _ = writeln!(
            out,
            "the {} cycles come from phase {} of {} ({range}, {cause}; {} of the delta)",
            human_delta(cycle_delta),
            worst.index + 1,
            deltas.len(),
            human_delta(worst.delta),
        );
    }
    let _ = writeln!(out, "per-phase deltas:");
    for d in deltas {
        let span = |r: Option<(u64, u64)>| match r {
            Some((s, e)) => format!("{s}..{e}"),
            None => "-".to_string(),
        };
        let mut cause = format!("{} on {}", d.class, d.thread);
        if let Some(q) = &d.queue {
            let _ = write!(cause, " ({q})");
        }
        if d.line != 0 {
            let _ = write!(cause, ", line {}", d.line);
        }
        let _ = writeln!(
            out,
            "  phase {:>2}: {:>8}  base {} \u{2192} new {}  [{cause}]",
            d.index + 1,
            human_delta(d.delta),
            span(d.base),
            span(d.new),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultMetrics, QueueMetrics};

    fn thread(name: &str, classes: [u64; 7]) -> ThreadMetrics {
        ThreadMetrics {
            name: name.into(),
            busy: classes[0],
            queue_full: classes[1],
            queue_empty: classes[2],
            sem: classes[3],
            mem_bus: classes[4],
            module_bus: classes[5],
            idle: classes[6],
        }
    }

    fn queue(name: &str, full: u64, empty: u64) -> QueueMetrics {
        QueueMetrics {
            name: name.into(),
            depth: 8,
            pushes: 100,
            pops: 100,
            high_water: 4,
            full_stalls: full,
            empty_stalls: empty,
            occupancy_hist: vec![1, 2, 3],
        }
    }

    fn base() -> SimMetrics {
        SimMetrics {
            cycles: 1000,
            threads: vec![
                thread("cpu", [400, 100, 200, 0, 0, 50, 250]),
                thread("hw1", [900, 0, 50, 0, 50, 0, 0]),
            ],
            queues: vec![queue("q0", 10, 20), queue("q1", 0, 5)],
            dropped_events: 0,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn diff_of_identical_runs_is_zero() {
        let m = base();
        let d = diff(&m, &m);
        assert!(d.is_zero(), "{d:?}");
        assert_eq!(d.cycle_delta, 0);
        assert!(d.attribution.iter().all(|c| c.delta == 0));
    }

    #[test]
    fn attribution_sums_to_cycle_delta_and_ranks() {
        let m = base();
        let mut worse = m.clone();
        worse.cycles = 1100;
        // hw1 (the critical timeline) gains 80 queue-full and 20 mem-bus.
        worse.threads[1].queue_full += 80;
        worse.threads[1].mem_bus += 20;
        worse.threads[0].queue_empty += 100; // cpu waits the extra time out
        worse.queues[0].full_stalls += 80;
        let d = diff(&m, &worse);
        assert_eq!(d.cycle_delta, 100);
        assert_eq!(d.attribution_thread.as_deref(), Some("hw1"));
        assert_eq!(d.attribution.iter().map(|c| c.delta).sum::<i64>(), 100);
        assert_eq!((d.attribution[0].class, d.attribution[0].delta), ("queue-full", 80));
        assert_eq!(d.queues[0].name, "q0");
        assert_eq!(d.queues[0].full_stalls, 80);
    }

    #[test]
    fn diff_negates_when_arguments_swap() {
        let m = base();
        let mut other = m.clone();
        other.cycles = 900;
        other.threads[1].busy -= 60;
        other.threads[1].queue_empty -= 40;
        other.threads[0].idle -= 100;
        other.queues[1].empty_stalls += 7;
        other.dropped_events = 3;
        let fwd = diff(&m, &other);
        let rev = diff(&other, &m);
        assert_eq!(fwd.cycle_delta, -rev.cycle_delta);
        assert_eq!(fwd.dropped_events_delta, -rev.dropped_events_delta);
        assert_eq!(fwd.attribution_thread, rev.attribution_thread);
        for (a, b) in fwd.attribution.iter().zip(&rev.attribution) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.delta, -b.delta);
        }
        for (a, b) in fwd.queues.iter().zip(&rev.queues) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.full_stalls, -b.full_stalls);
            assert_eq!(a.empty_stalls, -b.empty_stalls);
        }
    }

    #[test]
    fn different_thread_sets_report_structural_change() {
        let m = base();
        let mut other = m.clone();
        other.threads.push(thread("hw2", [500, 0, 0, 0, 0, 0, 500]));
        other.cycles = 1200;
        let d = diff(&m, &other);
        assert!(d.structural);
        assert_eq!(d.attribution.len(), 1);
        assert_eq!(d.attribution[0].class, STRUCTURAL_CLASS);
        assert_eq!(d.attribution[0].delta, 200);
        assert!(d.render_text("x").contains("structural change"));
    }

    #[test]
    fn critical_stage_shift_is_reported() {
        let m = base();
        let mut other = m.clone();
        // cpu becomes the busiest stage.
        other.threads[0].busy = 950;
        other.threads[0].idle = 0;
        let d = diff(&m, &other);
        assert_eq!(d.critical_before.as_deref(), Some("hw1"));
        assert_eq!(d.critical_after.as_deref(), Some("cpu"));
        assert!(d.headline("t hybrid").contains("critical stage moved hw1\u{2192}cpu"));
    }

    #[test]
    fn render_text_ranks_and_labels() {
        let m = base();
        let mut worse = m.clone();
        worse.cycles = 1031;
        worse.threads[1].queue_full += 12_400;
        worse.queues[1].full_stalls += 12_400;
        let t = diff(&m, &worse).render_text("blowfish hybrid");
        assert!(t.contains("blowfish hybrid: 1000 \u{2192} 1031 cycles"), "{t}");
        assert!(t.contains("queue-full"), "{t}");
        assert!(t.contains("+12.4k"), "{t}");
        let q_line = t.lines().find(|l| l.trim_start().starts_with("q1")).unwrap();
        assert!(q_line.contains("full-stalls +12.4k"), "{t}");
    }

    #[test]
    fn json_export_parses_back() {
        let m = base();
        let mut other = m.clone();
        other.cycles = 1100;
        other.threads[1].sem += 100;
        other.threads[0].idle += 100;
        let d = diff(&m, &other);
        let doc = json::parse(&d.to_json("aes hybrid")).expect("diff JSON parses");
        assert_eq!(doc.get("label").unwrap().as_str(), Some("aes hybrid"));
        assert_eq!(doc.get("cycle_delta").unwrap().as_f64(), Some(100.0));
        assert_eq!(doc.get("threads").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn human_delta_scales() {
        assert_eq!(human_delta(0), "+0");
        assert_eq!(human_delta(-317), "-317");
        assert_eq!(human_delta(12_400), "+12.4k");
        assert_eq!(human_delta(-12_400_000), "-12.4M");
    }

    fn phase(start: u64, end: u64, class: &str, queue: Option<&str>, line: u32) -> crate::Phase {
        crate::Phase {
            start,
            end,
            intervals: 1,
            thread: "hw1".into(),
            class: class.into(),
            stall_cycles: end - start + 1,
            queue: queue.map(str::to_string),
            func: (line != 0).then(|| "main".to_string()),
            line,
        }
    }

    fn report(phases: Vec<crate::Phase>) -> crate::PhaseReport {
        let total_cycles = phases.last().map(|p| p.end).unwrap_or(0);
        crate::PhaseReport { total_cycles, phases }
    }

    #[test]
    fn phase_deltas_sum_to_total_cycle_delta() {
        let base = report(vec![
            phase(1, 100, "busy", None, 7),
            phase(101, 220, "queue-full", Some("q2"), 41),
        ]);
        let new = report(vec![
            phase(1, 100, "busy", None, 7),
            phase(101, 290, "queue-full", Some("q2"), 41),
            phase(291, 300, "queue-empty", Some("q0"), 9),
        ]);
        let deltas = phase_attribution(&base, &new);
        assert_eq!(deltas.len(), 3);
        let sum: i64 = deltas.iter().map(|d| d.delta).sum();
        assert_eq!(sum, new.total_cycles as i64 - base.total_cycles as i64);
        assert_eq!(deltas[1].delta, 70);
        assert_eq!(deltas[2].delta, 10);
        assert!(deltas[2].base.is_none(), "extra new phase has no base range");
    }

    #[test]
    fn phase_deltas_sum_when_base_has_more_phases() {
        let base = report(vec![phase(1, 100, "busy", None, 0), phase(101, 400, "sem", None, 0)]);
        let new = report(vec![phase(1, 250, "busy", None, 0)]);
        let deltas = phase_attribution(&base, &new);
        let sum: i64 = deltas.iter().map(|d| d.delta).sum();
        assert_eq!(sum, 250 - 400);
        assert!(deltas[1].new.is_none(), "vanished base phase has no new range");
        assert_eq!(deltas[1].class, "sem", "vanished phase described by its base");
    }

    #[test]
    fn phase_attribution_render_names_the_worst_phase() {
        let base = report(vec![
            phase(1, 100, "busy", None, 7),
            phase(101, 220, "queue-full", Some("q2"), 41),
        ]);
        let new = report(vec![
            phase(1, 100, "busy", None, 7),
            phase(101, 261, "queue-full", Some("q2"), 41),
        ]);
        let deltas = phase_attribution(&base, &new);
        let text = render_phase_attribution(&deltas, 41);
        assert!(text.contains("phase 2 of 2"), "{text}");
        assert!(text.contains("queue-full on hw1 (q2), line 41 in main"), "{text}");
        assert!(text.contains("cycles 101..261"), "{text}");
    }

    #[test]
    fn identical_phase_reports_have_all_zero_deltas() {
        let r = report(vec![
            phase(1, 100, "busy", None, 0),
            phase(101, 220, "queue-full", Some("q2"), 41),
        ]);
        let deltas = phase_attribution(&r, &r);
        assert!(deltas.iter().all(|d| d.delta == 0));
        let text = render_phase_attribution(&deltas, 0);
        assert!(!text.contains("come from"), "no headline when nothing moved: {text}");
    }
}
