//! Bounded event recorder: a ring buffer that keeps the most recent
//! `capacity` events and counts what it had to drop.
//!
//! The buffer is allocated once at `enable` time; pushing never allocates,
//! which is what lets the simulator record per-cycle events without
//! perturbing its own timing (and what the allocation-guard test in
//! `twill-rt` asserts).

use crate::event::Event;

/// Fixed-capacity event ring. Oldest events are overwritten once full;
/// [`Ring::dropped`] reports how many were lost so truncation is never
/// silent.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    /// A ring holding at most `capacity` events (capacity 0 records
    /// nothing and counts everything as dropped).
    pub fn new(capacity: usize) -> Ring {
        Ring { buf: Vec::with_capacity(capacity), cap: capacity, head: 0, dropped: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten (or never stored, for capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event. O(1), never allocates (the backing storage was
    /// reserved up front).
    pub fn push(&mut self, e: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The retained events in chronological order.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Consume the ring, returning `(events in order, dropped count)`.
    pub fn into_parts(mut self) -> (Vec<Event>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> Event {
        Event { cycle, track: 0, kind: EventKind::Output { value: cycle as i32 } }
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = Ring::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_events().iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn wrap_keeps_latest_and_counts_dropped() {
        let mut r = Ring::new(3);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.len(), 3);
        let cycles: Vec<u64> = r.to_events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "most recent events survive, in order");
        let (events, dropped) = r.into_parts();
        assert_eq!(events.iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(dropped, 7);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Ring::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn push_never_allocates_after_construction() {
        let mut r = Ring::new(8);
        let base_ptr = r.buf.as_ptr();
        for c in 0..100 {
            r.push(ev(c));
        }
        assert_eq!(r.buf.as_ptr(), base_ptr, "backing storage must not move");
        assert_eq!(r.buf.capacity(), 8);
    }
}
