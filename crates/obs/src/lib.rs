//! # twill-obs
//!
//! The observability layer for the Twill reproduction: typed simulator
//! events, a bounded ring-buffer recorder, stall-attribution metrics, and
//! exporters (Chrome/Perfetto `trace_event` JSON, metrics JSON, profile
//! tables). `twill-rt` threads these hooks through the cycle simulator
//! behind its `obs` feature; `twill` (core) adds compiler-stage spans on
//! the same timeline. On top of the metrics sit the perf-regression
//! tools (DESIGN.md §9): the versioned [`baseline`] store
//! (`BENCH_baseline.json`), the [`diff`] engine that attributes a cycle
//! delta to stall classes / queues / critical-stage shifts, and the
//! shared [`fmt`] profile renderer.
//!
//! Design constraints (DESIGN.md §8):
//! * **Zero cost when disabled** — the simulator's hot path only ever
//!   checks an `Option` and touches pre-allocated counters; no event is
//!   constructed and no heap allocation happens unless a recorder was
//!   installed. Compiling `twill-rt` without its `obs` feature removes the
//!   recording code entirely.
//! * **No external dependencies** — events use plain integer ids and the
//!   JSON writer/parser is in-tree, so the crate builds offline.
//! * **Bounded memory** — the ring buffer keeps the most recent `capacity`
//!   events and counts what it dropped; truncation is always surfaced
//!   ([`Ring::dropped`], `SimReport::dropped_events`, and the
//!   `otherData.dropped_events` field of the Perfetto export).

pub mod baseline;
pub mod diff;
pub mod event;
pub mod fmt;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod phase;
pub mod profile;
pub mod regmap;
pub mod ring;
pub mod span;
pub mod timeseries;
pub mod tune;

pub use baseline::{Baseline, BaselineEntry, StageTimings};
pub use diff::{diff, phase_attribution, render_phase_attribution, MetricsDiff, PhaseDelta};
pub use event::{Event, EventKind, FaultClass, OpClass};
pub use fmt::{profile_report, timeline_table, StageSection};
pub use metrics::{FaultMetrics, MetricsSummary, QueueMetrics, SimMetrics, ThreadMetrics};
pub use perfetto::TraceBuilder;
pub use phase::{segment, Phase, PhaseReport};
pub use profile::{line_regression, CycleBreakdown, SiteSample, SourceProfile};
pub use regmap::{hardware_view, CounterDump, QueueDesc, RegMap};
pub use ring::Ring;
pub use span::{now_ns, Span};
pub use timeseries::{Interval, QueueWindow, Timeline};
pub use tune::{ObsSignal, TrialRecord, TunedConfig, TuningReport};
