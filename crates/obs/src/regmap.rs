//! The hardware performance-counter register map (DESIGN.md §14).
//!
//! The Verilog backend can instantiate a synthesizable `twill_perf`
//! subsystem: 64-bit cycle counters per hardware-thread stall class and
//! per-queue event, exposed as a read-only, memory-mapped register file on
//! the Twill runtime interface (`rt_fn` [`RT_FN_PERF_READ`], word address
//! in `rt_target`, data on `rt_rdata`). This module is the **single source
//! of truth for that word layout**: the emitter generates the readback mux
//! from [`RegMap::registers`], `twill-rt` encodes its simulated counters
//! through [`RegMap::encode`], and the ingester ([`RegMap::decode`]) turns
//! a raw [`CounterDump`] read off the device back into a
//! [`SimMetrics`]-compatible view. Layout drift between the three is
//! therefore impossible by construction.
//!
//! Word layout (all registers are 32-bit words; 64-bit counters occupy a
//! `lo`/`hi` pair, low word first):
//!
//! ```text
//! 0                magic      (REGMAP_MAGIC, "TWLP")
//! 1                version    (REGMAP_VERSION)
//! 2                n_threads
//! 3                n_queues
//! 4..=5            cycles lo/hi
//! 6 + t*15 + ..    thread t: 7 stall classes × (lo, hi), then the FSM
//!                  current-state snapshot word
//! 6 + T*15 + q*10  queue q: 4 event counters × (lo, hi), then the
//!                  high-water word and the declared-depth word
//! ```

use crate::json::{self, Json};
use crate::metrics::{QueueMetrics, SimMetrics, ThreadMetrics};
use std::fmt::Write as _;

/// Word 0 of every Twill counter register file: `"TWLP"` in ASCII.
pub const REGMAP_MAGIC: u32 = 0x5457_4C50;

/// Layout version (bump on any incompatible word-map change; [`RegMap::decode`]
/// rejects dumps from other versions loudly).
pub const REGMAP_VERSION: u32 = 1;

/// The `rt_fn` code a hardware thread (or the host readback tool) drives to
/// read one counter word. Codes 1–9 are taken by the runtime ops the
/// Verilog backend already emits (enqueue/dequeue/sem/IO/memory).
pub const RT_FN_PERF_READ: u32 = 10;

/// Fixed header: magic, version, n_threads, n_queues, cycles lo/hi.
pub const HEADER_WORDS: u32 = 6;

/// Per-thread block: 7 stall classes × 2 words + the FSM state snapshot.
pub const THREAD_WORDS: u32 = 15;

/// Per-queue block: 4 event counters × 2 words + high-water + depth.
pub const QUEUE_WORDS: u32 = 10;

/// Stall classes in register order — the field order of
/// [`ThreadMetrics`] / `twill-rt`'s `ClassCycles`.
pub const THREAD_CLASSES: [&str; 7] =
    ["busy", "queue_full", "queue_empty", "sem", "mem_bus", "module_bus", "idle"];

/// Queue event counters in register order.
pub const QUEUE_COUNTERS: [&str; 4] = ["pushes", "pops", "full_stalls", "empty_stalls"];

/// What one register word holds (typed, so encoders/decoders never match
/// on register-name strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegKind {
    Magic,
    Version,
    NumThreads,
    NumQueues,
    CyclesLo,
    CyclesHi,
    /// Half of thread `thread`'s 64-bit counter for `THREAD_CLASSES[class]`.
    ThreadClass {
        thread: usize,
        class: usize,
        hi: bool,
    },
    /// Thread `thread`'s FSM current-state snapshot (reads 0 — `S_IDLE` —
    /// once the run has finished).
    ThreadState {
        thread: usize,
    },
    /// Half of queue `queue`'s 64-bit counter for `QUEUE_COUNTERS[counter]`.
    QueueCounter {
        queue: usize,
        counter: usize,
        hi: bool,
    },
    /// Queue `queue`'s peak simultaneous occupancy.
    QueueHighWater {
        queue: usize,
    },
    /// Queue `queue`'s declared capacity (a constant; lets a dump be
    /// sanity-checked against its map).
    QueueDepth {
        queue: usize,
    },
}

/// One word of the register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Word address (the value driven on `rt_target`).
    pub addr: u32,
    /// Stable symbolic name (`t0_busy_lo`, `q2_high_water`, …) — also the
    /// basis of the counter signal names in the generated Verilog.
    pub name: String,
    pub kind: RegKind,
}

/// One queue as the register map sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueDesc {
    pub name: String,
    pub depth: u32,
}

/// The register map of one generated design: which agents and queues it
/// instruments, and therefore the exact word layout of its counter file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegMap {
    /// Design name (the module/benchmark the map was generated for).
    pub design: String,
    /// Instrumented agents in track order (`cpu`, `hw1`, …).
    pub threads: Vec<String>,
    /// Instrumented queues in id order.
    pub queues: Vec<QueueDesc>,
}

impl RegMap {
    pub fn new(design: &str, threads: Vec<String>, queues: Vec<QueueDesc>) -> RegMap {
        RegMap { design: design.to_string(), threads, queues }
    }

    /// Total register-file size in 32-bit words.
    pub fn words(&self) -> u32 {
        HEADER_WORDS
            + self.threads.len() as u32 * THREAD_WORDS
            + self.queues.len() as u32 * QUEUE_WORDS
    }

    /// First word of thread `t`'s block.
    pub fn thread_base(&self, t: usize) -> u32 {
        HEADER_WORDS + t as u32 * THREAD_WORDS
    }

    /// First word of queue `q`'s block.
    pub fn queue_base(&self, q: usize) -> u32 {
        HEADER_WORDS + self.threads.len() as u32 * THREAD_WORDS + q as u32 * QUEUE_WORDS
    }

    /// Every register in address order. `registers()[i].addr == i` — the
    /// enumeration *is* the layout.
    pub fn registers(&self) -> Vec<Register> {
        let mut regs = Vec::with_capacity(self.words() as usize);
        let mut push = |name: String, kind: RegKind| {
            let addr = regs.len() as u32;
            regs.push(Register { addr, name, kind });
        };
        push("magic".into(), RegKind::Magic);
        push("version".into(), RegKind::Version);
        push("n_threads".into(), RegKind::NumThreads);
        push("n_queues".into(), RegKind::NumQueues);
        push("cycles_lo".into(), RegKind::CyclesLo);
        push("cycles_hi".into(), RegKind::CyclesHi);
        for t in 0..self.threads.len() {
            for (c, class) in THREAD_CLASSES.iter().enumerate() {
                for hi in [false, true] {
                    let half = if hi { "hi" } else { "lo" };
                    push(
                        format!("t{t}_{class}_{half}"),
                        RegKind::ThreadClass { thread: t, class: c, hi },
                    );
                }
            }
            push(format!("t{t}_state"), RegKind::ThreadState { thread: t });
        }
        for q in 0..self.queues.len() {
            for (c, counter) in QUEUE_COUNTERS.iter().enumerate() {
                for hi in [false, true] {
                    let half = if hi { "hi" } else { "lo" };
                    push(
                        format!("q{q}_{counter}_{half}"),
                        RegKind::QueueCounter { queue: q, counter: c, hi },
                    );
                }
            }
            push(format!("q{q}_high_water"), RegKind::QueueHighWater { queue: q });
            push(format!("q{q}_depth"), RegKind::QueueDepth { queue: q });
        }
        debug_assert_eq!(regs.len() as u32, self.words());
        regs
    }

    /// Fill the register file from a metrics report — the model of what
    /// the synthesized counters hold once the corresponding run finishes.
    /// The report must describe exactly the threads and queues this map
    /// was generated for.
    pub fn encode(&self, m: &SimMetrics) -> Result<CounterDump, String> {
        if m.threads.len() != self.threads.len() {
            return Err(format!(
                "regmap: {} thread(s) in the map, {} in the metrics",
                self.threads.len(),
                m.threads.len()
            ));
        }
        if m.queues.len() != self.queues.len() {
            return Err(format!(
                "regmap: {} queue(s) in the map, {} in the metrics",
                self.queues.len(),
                m.queues.len()
            ));
        }
        for (name, t) in self.threads.iter().zip(&m.threads) {
            if *name != t.name {
                return Err(format!(
                    "regmap: thread {:?} does not match map entry {name:?}",
                    t.name
                ));
            }
        }
        for (qd, q) in self.queues.iter().zip(&m.queues) {
            if qd.name != q.name || qd.depth != q.depth {
                return Err(format!(
                    "regmap: queue {:?} (depth {}) does not match map entry {:?} (depth {})",
                    q.name, q.depth, qd.name, qd.depth
                ));
            }
        }
        let words = self
            .registers()
            .iter()
            .map(|r| match r.kind {
                RegKind::Magic => REGMAP_MAGIC,
                RegKind::Version => REGMAP_VERSION,
                RegKind::NumThreads => self.threads.len() as u32,
                RegKind::NumQueues => self.queues.len() as u32,
                RegKind::CyclesLo => m.cycles as u32,
                RegKind::CyclesHi => (m.cycles >> 32) as u32,
                RegKind::ThreadClass { thread, class, hi } => {
                    half(thread_class(&m.threads[thread], class), hi)
                }
                // Post-run snapshot: every FSM is back in S_IDLE (0).
                RegKind::ThreadState { .. } => 0,
                RegKind::QueueCounter { queue, counter, hi } => {
                    half(queue_counter(&m.queues[queue], counter), hi)
                }
                RegKind::QueueHighWater { queue } => m.queues[queue].high_water,
                RegKind::QueueDepth { queue } => self.queues[queue].depth,
            })
            .collect();
        Ok(CounterDump { words })
    }

    /// Parse a raw dump read off the device back into a structured metrics
    /// view. Validates the magic word, layout version, population counts,
    /// word count, and the per-queue depth constants before trusting any
    /// counter. The reconstruction carries exactly what the hardware
    /// counts: occupancy histograms, dropped-event and fault counters are
    /// not hardware-visible and come back empty/zero (compare against
    /// [`hardware_view`] of a simulator report).
    pub fn decode(&self, dump: &CounterDump) -> Result<SimMetrics, String> {
        let w = &dump.words;
        let expect = self.words() as usize;
        if w.len() != expect {
            return Err(format!("counter dump: {} word(s), register map has {expect}", w.len()));
        }
        if w[0] != REGMAP_MAGIC {
            return Err(format!(
                "counter dump: bad magic {:#010x} (want {REGMAP_MAGIC:#010x})",
                w[0]
            ));
        }
        if w[1] != REGMAP_VERSION {
            return Err(format!(
                "counter dump: layout version {} (this build reads {REGMAP_VERSION})",
                w[1]
            ));
        }
        if w[2] as usize != self.threads.len() || w[3] as usize != self.queues.len() {
            return Err(format!(
                "counter dump: {}t/{}q header, register map describes {}t/{}q",
                w[2],
                w[3],
                self.threads.len(),
                self.queues.len()
            ));
        }
        let pair =
            |base: u32| -> u64 { w[base as usize] as u64 | (w[base as usize + 1] as u64) << 32 };
        let mut m = SimMetrics { cycles: pair(4), ..Default::default() };
        for (t, name) in self.threads.iter().enumerate() {
            let base = self.thread_base(t);
            let class = |c: usize| pair(base + 2 * c as u32);
            m.threads.push(ThreadMetrics {
                name: name.clone(),
                busy: class(0),
                queue_full: class(1),
                queue_empty: class(2),
                sem: class(3),
                mem_bus: class(4),
                module_bus: class(5),
                idle: class(6),
            });
        }
        for (q, qd) in self.queues.iter().enumerate() {
            let base = self.queue_base(q);
            let depth = w[(base + 9) as usize];
            if depth != qd.depth {
                return Err(format!(
                    "counter dump: queue {:?} depth word {} disagrees with register map depth {}",
                    qd.name, depth, qd.depth
                ));
            }
            let counter = |c: usize| pair(base + 2 * c as u32);
            m.queues.push(QueueMetrics {
                name: qd.name.clone(),
                depth,
                pushes: counter(0),
                pops: counter(1),
                full_stalls: counter(2),
                empty_stalls: counter(3),
                high_water: w[(base + 8) as usize],
                occupancy_hist: Vec::new(),
            });
        }
        Ok(m)
    }

    /// Serialize as the machine-readable register-map artifact emitted
    /// next to the Verilog (`--emit-regmap`). Self-describing: carries the
    /// readback protocol constants and the full word table.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"twill-regmap\",");
        let _ = writeln!(out, "  \"version\": {REGMAP_VERSION},");
        let _ = writeln!(out, "  \"magic\": {REGMAP_MAGIC},");
        let _ = writeln!(out, "  \"design\": {},", json::quote(&self.design));
        let _ = writeln!(out, "  \"words\": {},", self.words());
        let _ = writeln!(
            out,
            "  \"readback\": {{\"rt_fn\": {RT_FN_PERF_READ}, \"addr\": \"rt_target\", \
             \"data\": \"rt_rdata\"}},"
        );
        let threads: Vec<String> = self.threads.iter().map(|t| json::quote(t)).collect();
        let _ = writeln!(out, "  \"threads\": [{}],", threads.join(", "));
        out.push_str("  \"queues\": [\n");
        for (i, q) in self.queues.iter().enumerate() {
            let _ =
                write!(out, "    {{\"name\": {}, \"depth\": {}}}", json::quote(&q.name), q.depth);
            out.push_str(if i + 1 < self.queues.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"registers\": [\n");
        let regs = self.registers();
        for (i, r) in regs.iter().enumerate() {
            let _ = write!(out, "    {{\"addr\": {}, \"name\": {}}}", r.addr, json::quote(&r.name));
            out.push_str(if i + 1 < regs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a register-map artifact back. The word table is re-derived
    /// from the thread/queue lists (it is redundant in the document) and
    /// cross-checked against the recorded `words` count.
    pub fn from_json(doc: &Json) -> Result<RegMap, String> {
        match doc.get("schema").and_then(|v| v.as_str()) {
            Some("twill-regmap") => {}
            other => return Err(format!("regmap: schema {other:?}, want \"twill-regmap\"")),
        }
        match doc.get("version").and_then(|v| v.as_u64()) {
            Some(v) if v == REGMAP_VERSION as u64 => {}
            v => {
                return Err(format!(
                    "regmap: layout version {v:?} (this build reads {REGMAP_VERSION})"
                ))
            }
        }
        let design =
            doc.get("design").and_then(|v| v.as_str()).ok_or("regmap: missing design")?.to_string();
        let threads = doc
            .get("threads")
            .and_then(|v| v.as_arr())
            .ok_or("regmap: missing threads")?
            .iter()
            .map(|t| t.as_str().map(str::to_string).ok_or("regmap: non-string thread name"))
            .collect::<Result<Vec<_>, _>>()?;
        let mut queues = Vec::new();
        for q in doc.get("queues").and_then(|v| v.as_arr()).ok_or("regmap: missing queues")? {
            queues.push(QueueDesc {
                name: q
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("regmap: queue missing name")?
                    .to_string(),
                depth: q
                    .get("depth")
                    .and_then(|v| v.as_u64())
                    .ok_or("regmap: queue missing depth")? as u32,
            });
        }
        let map = RegMap { design, threads, queues };
        if let Some(words) = doc.get("words").and_then(|v| v.as_u64()) {
            if words != map.words() as u64 {
                return Err(format!(
                    "regmap: document says {} word(s), thread/queue lists imply {}",
                    words,
                    map.words()
                ));
            }
        }
        Ok(map)
    }
}

/// A raw counter readback: one `u32` per register word, in address order —
/// exactly what a host tool collects by looping `rt_target` over the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDump {
    pub words: Vec<u32>,
}

impl CounterDump {
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"twill-counter-dump\",");
        let _ = writeln!(out, "  \"version\": {REGMAP_VERSION},");
        let words: Vec<String> = self.words.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(out, "  \"words\": [{}]", words.join(", "));
        out.push_str("}\n");
        out
    }

    pub fn from_json(doc: &Json) -> Result<CounterDump, String> {
        match doc.get("schema").and_then(|v| v.as_str()) {
            Some("twill-counter-dump") => {}
            other => {
                return Err(format!("counter dump: schema {other:?}, want \"twill-counter-dump\""))
            }
        }
        let words = doc
            .get("words")
            .and_then(|v| v.as_arr())
            .ok_or("counter dump: missing words")?
            .iter()
            .map(|w| {
                w.as_u64()
                    .filter(|&w| w <= u32::MAX as u64)
                    .map(|w| w as u32)
                    .ok_or("counter dump: non-u32 word")
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CounterDump { words })
    }
}

/// Project a simulator metrics report onto what the hardware counters can
/// see: occupancy histograms (event-sampled, simulator-only), dropped
/// trace events, and fault counters are cleared. [`RegMap::decode`] of a
/// faithful dump compares equal to this — the counter↔metric equivalence
/// contract the consistency suite asserts.
pub fn hardware_view(m: &SimMetrics) -> SimMetrics {
    let mut hw = m.clone();
    hw.dropped_events = 0;
    hw.faults = Default::default();
    for q in &mut hw.queues {
        q.occupancy_hist.clear();
    }
    hw
}

fn half(v: u64, hi: bool) -> u32 {
    if hi {
        (v >> 32) as u32
    } else {
        v as u32
    }
}

fn thread_class(t: &ThreadMetrics, class: usize) -> u64 {
    match class {
        0 => t.busy,
        1 => t.queue_full,
        2 => t.queue_empty,
        3 => t.sem,
        4 => t.mem_bus,
        5 => t.module_bus,
        6 => t.idle,
        _ => unreachable!("THREAD_CLASSES has 7 entries"),
    }
}

fn queue_counter(q: &QueueMetrics, counter: usize) -> u64 {
    match counter {
        0 => q.pushes,
        1 => q.pops,
        2 => q.full_stalls,
        3 => q.empty_stalls,
        _ => unreachable!("QUEUE_COUNTERS has 4 entries"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FaultMetrics;

    fn sample_map() -> RegMap {
        RegMap::new(
            "demo",
            vec!["cpu".into(), "hw1".into()],
            vec![
                QueueDesc { name: "q0".into(), depth: 8 },
                QueueDesc { name: "q1".into(), depth: 4 },
            ],
        )
    }

    fn sample_metrics() -> SimMetrics {
        SimMetrics {
            cycles: 0x1_0000_0005, // exercises the lo/hi split
            threads: vec![
                ThreadMetrics {
                    name: "cpu".into(),
                    busy: 40,
                    queue_full: 10,
                    queue_empty: 20,
                    sem: 1,
                    mem_bus: 2,
                    module_bus: 5,
                    idle: 22,
                },
                ThreadMetrics {
                    name: "hw1".into(),
                    busy: 0x2_0000_0001,
                    queue_empty: 5,
                    ..Default::default()
                },
            ],
            queues: vec![
                QueueMetrics {
                    name: "q0".into(),
                    depth: 8,
                    pushes: 50,
                    pops: 50,
                    high_water: 6,
                    full_stalls: 10,
                    empty_stalls: 20,
                    occupancy_hist: vec![1, 2, 3],
                },
                QueueMetrics {
                    name: "q1".into(),
                    depth: 4,
                    pushes: 0x1_0000_0000,
                    pops: 7,
                    high_water: 4,
                    full_stalls: 0,
                    empty_stalls: 9,
                    occupancy_hist: vec![4],
                },
            ],
            dropped_events: 3,
            faults: FaultMetrics { drops: 1, ..Default::default() },
        }
    }

    #[test]
    fn layout_counts_and_addresses_are_consistent() {
        let map = sample_map();
        assert_eq!(map.words(), 6 + 2 * 15 + 2 * 10);
        let regs = map.registers();
        assert_eq!(regs.len() as u32, map.words());
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.addr as usize, i, "{}", r.name);
        }
        assert_eq!(regs[map.thread_base(1) as usize].name, "t1_busy_lo");
        assert_eq!(regs[map.queue_base(0) as usize].name, "q0_pushes_lo");
        assert_eq!(regs.last().unwrap().name, "q1_depth");
    }

    #[test]
    fn encode_decode_round_trips_to_the_hardware_view() {
        let map = sample_map();
        let m = sample_metrics();
        let dump = map.encode(&m).unwrap();
        assert_eq!(dump.words.len() as u32, map.words());
        let decoded = map.decode(&dump).unwrap();
        assert_eq!(decoded, hardware_view(&m));
        // 64-bit values survive the word split.
        assert_eq!(decoded.cycles, 0x1_0000_0005);
        assert_eq!(decoded.threads[1].busy, 0x2_0000_0001);
        assert_eq!(decoded.queues[1].pushes, 0x1_0000_0000);
    }

    #[test]
    fn encode_rejects_mismatched_reports() {
        let map = sample_map();
        let mut m = sample_metrics();
        m.threads[1].name = "hw9".into();
        assert!(map.encode(&m).unwrap_err().contains("hw9"));
        let mut m = sample_metrics();
        m.queues.pop();
        assert!(map.encode(&m).unwrap_err().contains("queue"));
    }

    #[test]
    fn decode_validates_magic_version_and_shape() {
        let map = sample_map();
        let good = map.encode(&sample_metrics()).unwrap();

        let mut bad = good.clone();
        bad.words[0] = 0xdead_beef;
        assert!(map.decode(&bad).unwrap_err().contains("magic"));

        let mut bad = good.clone();
        bad.words[1] = REGMAP_VERSION + 1;
        assert!(map.decode(&bad).unwrap_err().contains("version"));

        let mut bad = good.clone();
        bad.words.pop();
        assert!(map.decode(&bad).unwrap_err().contains("word"));

        let mut bad = good.clone();
        bad.words[2] = 7;
        assert!(map.decode(&bad).unwrap_err().contains("header"));

        // Depth constant must agree with the map.
        let mut bad = good;
        let depth_addr = (map.queue_base(0) + 9) as usize;
        bad.words[depth_addr] = 99;
        assert!(map.decode(&bad).unwrap_err().contains("depth"));
    }

    #[test]
    fn regmap_json_round_trips() {
        let map = sample_map();
        let doc = json::parse(&map.to_json()).expect("regmap JSON parses");
        assert_eq!(RegMap::from_json(&doc).unwrap(), map);
        assert_eq!(doc.get("words").unwrap().as_u64(), Some(map.words() as u64));
        assert_eq!(
            doc.get("readback").unwrap().get("rt_fn").unwrap().as_u64(),
            Some(RT_FN_PERF_READ as u64)
        );
        let regs = doc.get("registers").unwrap().as_arr().unwrap();
        assert_eq!(regs.len() as u32, map.words());
    }

    #[test]
    fn dump_json_round_trips() {
        let map = sample_map();
        let dump = map.encode(&sample_metrics()).unwrap();
        let doc = json::parse(&dump.to_json()).expect("dump JSON parses");
        assert_eq!(CounterDump::from_json(&doc).unwrap(), dump);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        let doc = json::parse(r#"{"schema": "something-else", "version": 1}"#).unwrap();
        assert!(RegMap::from_json(&doc).is_err());
        assert!(CounterDump::from_json(&doc).is_err());
    }
}
