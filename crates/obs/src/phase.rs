//! Phase segmentation over a sampled [`Timeline`]: adjacent intervals
//! whose per-thread dominant stall classes agree are merged into one
//! phase, each phase is attributed to its hottest (thread, stall-class)
//! pair and — when the class is a queue stall — to the queue responsible,
//! and (given the run's source profile) named by the hottest C line of
//! that pair. The per-phase diff attribution in [`crate::diff`] aligns two
//! of these reports to say *when* a regression happened, not just where.

use crate::json::{self, Json};
use crate::profile::{CycleBreakdown, SourceProfile};
use crate::timeseries::{Timeline, CLASS_NAMES};
use std::fmt::Write as _;

/// One phase: a maximal run of sample intervals with a stable per-thread
/// dominant stall-class signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// First cycle covered (inclusive).
    pub start: u64,
    /// Last cycle covered (inclusive).
    pub end: u64,
    /// Number of sample intervals merged into this phase.
    pub intervals: usize,
    /// Thread owning the phase's dominant stall (or the busiest thread
    /// when nothing stalled).
    pub thread: String,
    /// Dominant stall class name (one of [`CLASS_NAMES`]).
    pub class: String,
    /// Cycles the dominant (thread, class) pair accumulated in the phase.
    pub stall_cycles: u64,
    /// The responsible queue, when the dominant class is a queue stall.
    pub queue: Option<String>,
    /// Hottest function of the dominant pair (set by [`PhaseReport::annotate`]).
    pub func: Option<String>,
    /// Hottest source line of the dominant pair (0 = not annotated).
    pub line: u32,
}

impl Phase {
    /// Phase length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start + 1
    }

    /// `queue-full on q2` / `busy on cpu` style headline fragment.
    pub fn describe(&self) -> String {
        let mut s = format!("{} on {}", self.class, self.thread);
        if let Some(q) = &self.queue {
            let _ = write!(s, " ({q})");
        }
        if self.line != 0 {
            let _ = write!(s, ", line {}", self.line);
            if let Some(f) = &self.func {
                let _ = write!(s, " in {f}");
            }
        }
        s
    }
}

/// The segmented view of one run's timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Total cycles covered (the run's cycle count).
    pub total_cycles: u64,
    /// Consecutive phases partitioning cycles `[1, total_cycles]`.
    pub phases: Vec<Phase>,
}

/// Dominant class index of one breakdown (ties keep the lowest index, so
/// `busy` wins a dead heat — deterministic across runs).
fn dominant_class(b: &CycleBreakdown) -> usize {
    let a = b.as_array();
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Segment a timeline into phases and attribute each one.
pub fn segment(t: &Timeline) -> PhaseReport {
    let mut report = PhaseReport { total_cycles: t.total_cycles(), phases: Vec::new() };
    let signature = |iv: &crate::timeseries::Interval| -> Vec<usize> {
        iv.threads.iter().map(dominant_class).collect()
    };
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (first interval, count)
    for (i, iv) in t.intervals.iter().enumerate() {
        match runs.last_mut() {
            Some((first, count)) if signature(&t.intervals[*first]) == signature(iv) => *count += 1,
            _ => runs.push((i, 1)),
        }
    }
    for (first, count) in runs {
        let ivs = &t.intervals[first..first + count];
        // Sum each thread's breakdown over the phase.
        let mut sums = vec![CycleBreakdown::default(); t.thread_names.len()];
        for iv in ivs {
            for (acc, d) in sums.iter_mut().zip(&iv.threads) {
                let (a, b) = (acc.as_array(), d.as_array());
                *acc = from_array([
                    a[0] + b[0],
                    a[1] + b[1],
                    a[2] + b[2],
                    a[3] + b[3],
                    a[4] + b[4],
                    a[5] + b[5],
                    a[6] + b[6],
                ]);
            }
        }
        // The phase's dominant pair: the largest real stall (classes 1..=5,
        // excluding busy and idle) across all threads; a stall-free phase
        // is attributed to its busiest thread.
        let mut best: Option<(usize, usize, u64)> = None; // (thread, class, cycles)
        for (ti, s) in sums.iter().enumerate() {
            for (ci, &v) in s.as_array().iter().enumerate().take(6).skip(1) {
                if v > 0 && best.map(|(_, _, bv)| v > bv).unwrap_or(true) {
                    best = Some((ti, ci, v));
                }
            }
        }
        let (thread, class, cycles) = best.unwrap_or_else(|| {
            let ti = sums
                .iter()
                .enumerate()
                .max_by_key(|(i, s)| (s.busy, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            (ti, 0, sums.get(ti).map(|s| s.busy).unwrap_or(0))
        });
        // Queue stalls name the queue with the most matching blocked
        // cycles inside the phase.
        let queue = match class {
            1 | 2 => {
                let mut totals = vec![0u64; t.queue_names.len()];
                for iv in ivs {
                    for (acc, w) in totals.iter_mut().zip(&iv.queues) {
                        *acc += if class == 1 { w.full_stalls } else { w.empty_stalls };
                    }
                }
                totals
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, &v)| (v, std::cmp::Reverse(*i)))
                    .filter(|(_, &v)| v > 0)
                    .map(|(i, _)| t.queue_names[i].clone())
            }
            _ => None,
        };
        report.phases.push(Phase {
            start: ivs[0].start,
            end: ivs[count - 1].end,
            intervals: count,
            thread: t.thread_names.get(thread).cloned().unwrap_or_default(),
            class: CLASS_NAMES[class].to_string(),
            stall_cycles: cycles,
            queue,
            func: None,
            line: 0,
        });
    }
    report
}

fn from_array(a: [u64; 7]) -> CycleBreakdown {
    CycleBreakdown {
        busy: a[0],
        queue_full: a[1],
        queue_empty: a[2],
        sem: a[3],
        mem_bus: a[4],
        module_bus: a[5],
        idle: a[6],
    }
}

impl PhaseReport {
    /// Name each phase by the hottest C line of its dominant (thread,
    /// class) pair in the run's source profile. The profile is an
    /// end-of-run aggregate, so the line named is the pair's hottest line
    /// over the whole run — the best stand-in available without per-site
    /// sampling. Ties pick the smallest line; `<runtime>` pseudo-sites
    /// (line 0) never win.
    pub fn annotate(&mut self, sp: &SourceProfile) {
        for p in &mut self.phases {
            let ci = CLASS_NAMES.iter().position(|c| *c == p.class).unwrap_or(0);
            let mut best: Option<(&str, u32, u64)> = None;
            for s in sp.samples.iter().filter(|s| s.thread == p.thread && s.line != 0) {
                let v = s.cycles.as_array()[ci];
                let better = match best {
                    None => v > 0,
                    Some((_, line, bv)) => v > bv || (v == bv && s.line < line),
                };
                if better {
                    best = Some((&s.func, s.line, v));
                }
            }
            if let Some((func, line, _)) = best {
                p.func = Some(func.to_string());
                p.line = line;
            }
        }
    }

    /// Human-readable phase table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== phases ({} over {} cycles) ===",
            self.phases.len(),
            self.total_cycles
        );
        for (i, p) in self.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "phase {}/{}: cycles {}..{} ({} cycles, {} interval(s)) — {}",
                i + 1,
                self.phases.len(),
                p.start,
                p.end,
                p.cycles(),
                p.intervals,
                p.describe()
            );
        }
        out
    }

    /// Serialize as JSON (round-trips through [`PhaseReport::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"twill-phases-v1\",\n");
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"start\": {}, \"end\": {}, \"intervals\": {}, \"thread\": {}, \
                 \"class\": {}, \"stall_cycles\": {}, \"line\": {}",
                p.start,
                p.end,
                p.intervals,
                json::quote(&p.thread),
                json::quote(&p.class),
                p.stall_cycles,
                p.line
            );
            if let Some(q) = &p.queue {
                let _ = write!(out, ", \"queue\": {}", json::quote(q));
            }
            if let Some(f) = &p.func {
                let _ = write!(out, ", \"func\": {}", json::quote(f));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a document produced by [`PhaseReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<PhaseReport, String> {
        let mut r = PhaseReport {
            total_cycles: doc
                .get("total_cycles")
                .and_then(|v| v.as_u64())
                .ok_or("phases: missing total_cycles")?,
            phases: Vec::new(),
        };
        for p in doc.get("phases").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            let num = |key: &str| {
                p.get(key).and_then(|v| v.as_u64()).ok_or_else(|| format!("phases: missing {key}"))
            };
            let s = |key: &str| {
                p.get(key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("phases: missing {key}"))
            };
            r.phases.push(Phase {
                start: num("start")?,
                end: num("end")?,
                intervals: num("intervals")? as usize,
                thread: s("thread")?,
                class: s("class")?,
                stall_cycles: num("stall_cycles")?,
                queue: p.get("queue").and_then(|v| v.as_str()).map(str::to_string),
                func: p.get("func").and_then(|v| v.as_str()).map(str::to_string),
                line: num("line")? as u32,
            });
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SiteSample;
    use crate::timeseries::{Interval, QueueWindow};

    fn bd(busy: u64, qf: u64, qe: u64) -> CycleBreakdown {
        CycleBreakdown { busy, queue_full: qf, queue_empty: qe, ..Default::default() }
    }

    fn timeline() -> Timeline {
        let qw = |full, empty, occ| QueueWindow {
            pushes: 1,
            pops: 1,
            full_stalls: full,
            empty_stalls: empty,
            occupancy: occ,
        };
        Timeline {
            sample_interval: 100,
            thread_names: vec!["cpu".into(), "hw1".into()],
            queue_names: vec!["q0".into(), "q1".into()],
            intervals: vec![
                // Two busy intervals (same signature: both threads busy).
                Interval {
                    start: 1,
                    end: 100,
                    threads: vec![bd(90, 10, 0), bd(100, 0, 0)],
                    queues: vec![qw(0, 0, 1), qw(0, 0, 0)],
                },
                Interval {
                    start: 101,
                    end: 200,
                    threads: vec![bd(80, 20, 0), bd(100, 0, 0)],
                    queues: vec![qw(5, 0, 2), qw(0, 0, 0)],
                },
                // A queue-full phase: cpu mostly blocked pushing into q1.
                Interval {
                    start: 201,
                    end: 300,
                    threads: vec![bd(10, 90, 0), bd(100, 0, 0)],
                    queues: vec![qw(2, 0, 1), qw(88, 0, 4)],
                },
            ],
        }
    }

    #[test]
    fn merges_equal_signatures_and_partitions_cycles() {
        let r = segment(&timeline());
        assert_eq!(r.total_cycles, 300);
        assert_eq!(r.phases.len(), 2, "{r:?}");
        assert_eq!((r.phases[0].start, r.phases[0].end), (1, 200));
        assert_eq!(r.phases[0].intervals, 2);
        assert_eq!((r.phases[1].start, r.phases[1].end), (201, 300));
        // Phases tile the run exactly.
        assert_eq!(r.phases.iter().map(|p| p.cycles()).sum::<u64>(), r.total_cycles);
    }

    #[test]
    fn attributes_dominant_stall_and_queue() {
        let r = segment(&timeline());
        // Phase 1's largest stall is cpu queue-full (30 cycles over the
        // two merged intervals).
        assert_eq!(r.phases[0].thread, "cpu");
        assert_eq!(r.phases[0].class, "queue-full");
        assert_eq!(r.phases[0].stall_cycles, 30);
        // Phase 2's stall is also cpu queue-full, on q1 (88 > 2).
        assert_eq!(r.phases[1].queue.as_deref(), Some("q1"));
        assert_eq!(r.phases[1].stall_cycles, 90);
    }

    #[test]
    fn stall_free_phase_falls_back_to_busiest_thread() {
        let t = Timeline {
            sample_interval: 10,
            thread_names: vec!["cpu".into(), "hw1".into()],
            queue_names: vec![],
            intervals: vec![Interval {
                start: 1,
                end: 10,
                threads: vec![bd(4, 0, 0), bd(10, 0, 0)],
                queues: vec![],
            }],
        };
        let r = segment(&t);
        assert_eq!(r.phases[0].thread, "hw1");
        assert_eq!(r.phases[0].class, "busy");
        assert!(r.phases[0].queue.is_none());
    }

    #[test]
    fn annotate_names_hottest_line_of_dominant_pair() {
        let mut r = segment(&timeline());
        let sp = SourceProfile {
            name: "t".into(),
            samples: vec![
                SiteSample {
                    thread: "cpu".into(),
                    func: "main".into(),
                    line: 41,
                    inst: String::new(),
                    cycles: bd(0, 100, 0),
                },
                SiteSample {
                    thread: "cpu".into(),
                    func: "main".into(),
                    line: 7,
                    inst: String::new(),
                    cycles: bd(500, 3, 0),
                },
                // A hotter line on the wrong thread must not win.
                SiteSample {
                    thread: "hw1".into(),
                    func: "main".into(),
                    line: 90,
                    inst: String::new(),
                    cycles: bd(0, 999, 0),
                },
            ],
        };
        r.annotate(&sp);
        assert_eq!(r.phases[1].line, 41);
        assert_eq!(r.phases[1].func.as_deref(), Some("main"));
        assert!(r.phases[1].describe().contains("line 41"));
    }

    #[test]
    fn json_round_trips_to_equal_report() {
        let mut r = segment(&timeline());
        r.phases[0].func = Some("main".into());
        r.phases[0].line = 12;
        let doc = json::parse(&r.to_json()).expect("phase JSON must parse");
        assert_eq!(PhaseReport::from_json(&doc).unwrap(), r);
    }

    #[test]
    fn render_text_mentions_every_phase() {
        let r = segment(&timeline());
        let text = r.render_text();
        assert!(text.contains("phase 1/2"));
        assert!(text.contains("phase 2/2"));
        assert!(text.contains("queue-full on cpu"));
    }
}
