//! Typed artifacts of the profile-guided auto-tuner (`twill-tune`).
//!
//! The tuner (in the `twill` core crate) searches DSWP split points and
//! per-queue depths to minimize hybrid cycles. This module owns what the
//! search *leaves behind*: every evaluated configuration is a
//! [`TrialRecord`] naming the observability signal that proposed it (a
//! saturated queue's high-water mark, a starved or overloaded critical
//! thread) and the C line that charged the most cycles to the triggering
//! stall class; the whole search renders as a Perfetto trace (one track
//! per search arm, a counter track for best-so-far cycles); and the final
//! [`TuningReport`] proves the win through the [`crate::diff`] engine, so
//! its stall-class deltas reconcile exactly with the cycle delta.
//!
//! Determinism contract: nothing here reads a clock or any other ambient
//! state. The report is a pure function of the trials, so the same
//! profile and seed produce byte-identical JSON and trace documents
//! (DESIGN.md §13).

use crate::diff::MetricsDiff;
use crate::json;
use crate::profile::CycleBreakdown;
use std::fmt::Write as _;

/// The observability signal that proposed a search move. Every trial
/// carries one, so a report reader can always answer "why did the tuner
/// try this?" with a measured quantity, not a heuristic's say-so.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSignal {
    /// Signal class: `queue-full-saturated`, `queue-empty-starved`,
    /// `critical-thread-busy`, `critical-thread-starved`, `baseline`.
    pub kind: String,
    /// Human sentence quoting the measurement, e.g. "q2 high-water 8/8
    /// with 14.2k full-stalls".
    pub detail: String,
    /// Queue the signal reads, when queue-shaped.
    pub queue: Option<usize>,
    /// Thread the signal reads, when thread-shaped (`cpu`, `hw1`, …).
    pub thread: Option<String>,
    /// Source file of the charging line (empty when unattributed).
    pub file: String,
    /// 1-based C line charging the most cycles to `stall_class`
    /// (0 = no line-granular attribution available).
    pub line: u32,
    /// Stall class the signal is about (`queue-full`, `queue-empty`, …).
    pub stall_class: String,
    /// Percentage of the source thread's stall cycles charged to
    /// (`line`, `stall_class`) — the "61% of stalls" in the report hint.
    pub charge_pct: f64,
}

impl ObsSignal {
    /// The synthetic signal attached to the baseline trial.
    pub fn baseline() -> ObsSignal {
        ObsSignal {
            kind: "baseline".into(),
            detail: "paper-default configuration".into(),
            queue: None,
            thread: None,
            file: String::new(),
            line: 0,
            stall_class: String::new(),
            charge_pct: 0.0,
        }
    }

    /// One-line provenance: `"line 41 of jpeg.c charged 61% of stalls to
    /// queue-full"` (or just the detail when no line was attributed).
    pub fn provenance(&self) -> String {
        if self.line > 0 {
            format!(
                "{}; line {} of {} charged {:.0}% of stalls to {}",
                self.detail, self.line, self.file, self.charge_pct, self.stall_class
            )
        } else {
            self.detail.clone()
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"kind\": {}, \"detail\": {}, \"queue\": {}, \"thread\": {}, \
             \"file\": {}, \"line\": {}, \"stall_class\": {}, \"charge_pct\": {}}}",
            json::quote(&self.kind),
            json::quote(&self.detail),
            self.queue.map(|q| q.to_string()).unwrap_or_else(|| "null".into()),
            self.thread.as_deref().map(json::quote).unwrap_or_else(|| "null".into()),
            json::quote(&self.file),
            self.line,
            json::quote(&self.stall_class),
            json::number(self.charge_pct),
        )
    }
}

/// One evaluated configuration: what was tried, why, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// 0-based evaluation order (trial 0 is the baseline run).
    pub id: usize,
    /// Search round the trial belongs to.
    pub round: usize,
    /// Search arm: `baseline`, `queue-depth`, or `split-point`.
    pub arm: String,
    /// Human description of the move, e.g. `"q2 depth 8\u{2192}32"` or
    /// `"sw_fraction 0.25\u{2192}0.15"`.
    pub action: String,
    /// The observability signal that proposed this move.
    pub signal: ObsSignal,
    /// Hybrid cycles under the trial configuration.
    pub cycles: u64,
    /// Best (lowest) cycles seen before this trial was evaluated.
    pub best_before: u64,
    /// Whether the search adopted this configuration.
    pub accepted: bool,
    /// Critical-thread stall-class breakdown of the trial run.
    pub stalls: CycleBreakdown,
}

impl TrialRecord {
    fn to_json(&self) -> String {
        let s = &self.stalls;
        format!(
            "{{\"id\": {}, \"round\": {}, \"arm\": {}, \"action\": {}, \
             \"signal\": {}, \"cycles\": {}, \"best_before\": {}, \"accepted\": {}, \
             \"stalls\": {{\"busy\": {}, \"queue_full\": {}, \"queue_empty\": {}, \
             \"sem\": {}, \"mem_bus\": {}, \"module_bus\": {}, \"idle\": {}}}}}",
            self.id,
            self.round,
            json::quote(&self.arm),
            json::quote(&self.action),
            self.signal.to_json(),
            self.cycles,
            self.best_before,
            self.accepted,
            s.busy,
            s.queue_full,
            s.queue_empty,
            s.sem,
            s.mem_bus,
            s.module_bus,
            s.idle,
        )
    }
}

/// The configuration the search settled on, in plain replayable terms
/// (`twillc --sw-fraction … --queue-depths …`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TunedConfig {
    /// Total partition count, when a partition-merge move was accepted
    /// (None = paper default).
    pub partitions: Option<usize>,
    /// Software-partition work fraction, when a split-point move was
    /// accepted (None = paper default).
    pub sw_fraction: Option<f64>,
    /// Accepted per-queue depth overrides, ascending by queue id.
    pub queue_depths: Vec<(usize, u32)>,
}

impl TunedConfig {
    pub fn is_default(&self) -> bool {
        self.partitions.is_none() && self.sw_fraction.is_none() && self.queue_depths.is_empty()
    }

    /// The equivalent `twillc` flags, e.g.
    /// `--partitions 2 --sw-fraction 0.15 --queue-depths q2=32,q5=16`.
    pub fn as_flags(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = self.partitions {
            parts.push(format!("--partitions {p}"));
        }
        if let Some(f) = self.sw_fraction {
            parts.push(format!("--sw-fraction {f}"));
        }
        if !self.queue_depths.is_empty() {
            let list: Vec<String> =
                self.queue_depths.iter().map(|(q, d)| format!("q{q}={d}")).collect();
            parts.push(format!("--queue-depths {}", list.join(",")));
        }
        if parts.is_empty() {
            "(paper default)".into()
        } else {
            parts.join(" ")
        }
    }

    fn to_json(&self) -> String {
        let depths: Vec<String> = self
            .queue_depths
            .iter()
            .map(|(q, d)| format!("{{\"queue\": {q}, \"depth\": {d}}}"))
            .collect();
        format!(
            "{{\"partitions\": {}, \"sw_fraction\": {}, \"queue_depths\": [{}]}}",
            self.partitions.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
            self.sw_fraction.map(json::number).unwrap_or_else(|| "null".into()),
            depths.join(", "),
        )
    }
}

/// The complete, self-proving record of one tuning search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Program/benchmark name.
    pub bench: String,
    /// Search seed (same profile + seed ⇒ byte-identical report).
    pub seed: u64,
    /// Search rounds executed (a round proposes and evaluates a batch).
    pub rounds: usize,
    /// Hybrid cycles under the paper-default configuration.
    pub baseline_cycles: u64,
    /// Hybrid cycles under the accepted configuration (== baseline when
    /// no move improved).
    pub tuned_cycles: u64,
    /// Every evaluated configuration, in evaluation order.
    pub trials: Vec<TrialRecord>,
    /// The accepted configuration.
    pub tuned: TunedConfig,
    /// Diff-engine proof: baseline metrics → tuned metrics. Its
    /// attribution deltas sum exactly to `tuned_cycles - baseline_cycles`
    /// (or carry one structural entry when the partitioning changed).
    pub diff: MetricsDiff,
    /// One line per accepted move: the obs signal and C line behind it.
    pub hints: Vec<String>,
}

impl TuningReport {
    /// `baseline / tuned` — 1.0 when nothing improved.
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.tuned_cycles as f64
        }
    }

    /// Accepted trials, in evaluation order.
    pub fn accepted(&self) -> impl Iterator<Item = &TrialRecord> {
        self.trials.iter().filter(|t| t.accepted)
    }

    /// Deterministic JSON document. Contains no timestamps or ambient
    /// state: same trials, same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": {},", json::quote(&self.bench));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"baseline_cycles\": {},", self.baseline_cycles);
        let _ = writeln!(out, "  \"tuned_cycles\": {},", self.tuned_cycles);
        let _ = writeln!(out, "  \"speedup\": {},", json::number(self.speedup()));
        let _ = writeln!(out, "  \"tuned\": {},", self.tuned.to_json());
        let _ = writeln!(out, "  \"tuned_flags\": {},", json::quote(&self.tuned.as_flags()));
        out.push_str("  \"hints\": [\n");
        for (i, h) in self.hints.iter().enumerate() {
            let _ = write!(out, "    {}", json::quote(h));
            out.push_str(if i + 1 < self.hints.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"trials\": [\n");
        for (i, t) in self.trials.iter().enumerate() {
            let _ = write!(out, "    {}", t.to_json());
            out.push_str(if i + 1 < self.trials.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        // Embed the diff-engine proof as a nested document (strip the
        // trailing newline so the nesting stays tidy).
        let diff_doc = self.diff.to_json(&format!("{} tuned vs default", self.bench));
        let _ = writeln!(out, "  \"diff\": {}", indent_block(diff_doc.trim_end(), "  "));
        out.push_str("}\n");
        out
    }

    /// Human summary: headline, accepted moves with provenance, proof.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tune {}: {} \u{2192} {} cycles ({:.2}x, {} trial(s), {} round(s), seed {})",
            self.bench,
            self.baseline_cycles,
            self.tuned_cycles,
            self.speedup(),
            self.trials.len(),
            self.rounds,
            self.seed,
        );
        let _ = writeln!(out, "tuned config: {}", self.tuned.as_flags());
        let moves: Vec<&TrialRecord> = self.accepted().filter(|t| t.arm != "baseline").collect();
        for t in &moves {
            let _ = writeln!(
                out,
                "  accepted [{}] {}: {} cycles (best was {})\n    because {}",
                t.arm,
                t.action,
                t.cycles,
                t.best_before,
                t.signal.provenance()
            );
        }
        if moves.is_empty() {
            let _ = writeln!(out, "  no move beat the default; keeping the paper configuration");
        }
        out.push_str(&self.diff.render_text(&format!("{} tuned vs default", self.bench)));
        out
    }

    /// Export the search itself as a Chrome/Perfetto `trace_event`
    /// document: one slice track per search arm (each trial an `X` event
    /// on its arm's track, timeline = trial evaluation order), a counter
    /// track following best-so-far cycles, and an instant per accepted
    /// move. Like [`TuningReport::to_json`], byte-deterministic.
    pub fn search_trace(&self) -> String {
        const TUNE_PID: u32 = 3;
        let mut arms: Vec<&str> = Vec::new();
        for t in &self.trials {
            if !arms.contains(&t.arm.as_str()) {
                arms.push(&t.arm);
            }
        }
        let mut ev = Vec::new();
        ev.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {TUNE_PID}, \"tid\": 0, \
             \"args\": {{\"name\": {}}}}}",
            json::quote(&format!("twill tuner (search, {})", self.bench))
        ));
        for (tid, arm) in arms.iter().enumerate() {
            ev.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {TUNE_PID}, \
                 \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
                json::quote(&format!("arm: {arm}"))
            ));
        }
        let mut best = u64::MAX;
        for t in &self.trials {
            let tid = arms.iter().position(|a| *a == t.arm).unwrap_or(0);
            ev.push(format!(
                "{{\"name\": {}, \"ph\": \"X\", \"pid\": {TUNE_PID}, \"tid\": {tid}, \
                 \"ts\": {}, \"dur\": 1, \"cat\": \"trial\", \"args\": {{\"cycles\": {}, \
                 \"accepted\": {}, \"signal\": {}, \"round\": {}}}}}",
                json::quote(&t.action),
                t.id,
                t.cycles,
                t.accepted,
                json::quote(&t.signal.kind),
                t.round,
            ));
            if t.accepted {
                ev.push(format!(
                    "{{\"name\": {}, \"ph\": \"i\", \"pid\": {TUNE_PID}, \"tid\": {tid}, \
                     \"ts\": {}, \"s\": \"p\"}}",
                    json::quote(&format!("accepted: {}", t.action)),
                    t.id,
                ));
            }
            best = best.min(t.cycles);
            ev.push(format!(
                "{{\"name\": \"best-so-far cycles\", \"ph\": \"C\", \"pid\": {TUNE_PID}, \
                 \"tid\": 0, \"ts\": {}, \"args\": {{\"cycles\": {best}}}}}",
                t.id,
            ));
        }
        let mut out = String::new();
        out.push_str("{\n  \"traceEvents\": [\n");
        for (i, line) in ev.iter().enumerate() {
            let _ = write!(out, "    {line}");
            out.push_str(if i + 1 < ev.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\n");
        let _ = writeln!(out, "    \"bench\": {},", json::quote(&self.bench));
        let _ = writeln!(out, "    \"seed\": \"{}\",", self.seed);
        let _ = writeln!(out, "    \"baseline_cycles\": \"{}\",", self.baseline_cycles);
        let _ = writeln!(out, "    \"tuned_cycles\": \"{}\"", self.tuned_cycles);
        out.push_str("  }\n}\n");
        out
    }
}

/// Re-indent every line after the first by `pad` (for nesting one JSON
/// document inside another without re-serializing it).
fn indent_block(doc: &str, pad: &str) -> String {
    let mut lines = doc.lines();
    let mut out = String::from(lines.next().unwrap_or(""));
    for l in lines {
        out.push('\n');
        out.push_str(pad);
        out.push_str(l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff;
    use crate::metrics::{QueueMetrics, SimMetrics, ThreadMetrics};

    fn metrics(cycles: u64, busy: u64, full: u64) -> SimMetrics {
        SimMetrics {
            cycles,
            threads: vec![ThreadMetrics {
                name: "hw1".into(),
                busy,
                queue_full: full,
                idle: cycles - busy - full,
                ..Default::default()
            }],
            queues: vec![QueueMetrics {
                name: "q0".into(),
                depth: 8,
                high_water: 8,
                full_stalls: full,
                ..Default::default()
            }],
            dropped_events: 0,
            faults: Default::default(),
        }
    }

    fn report() -> TuningReport {
        let base = metrics(1000, 600, 300);
        let tuned = metrics(800, 600, 100);
        let signal = ObsSignal {
            kind: "queue-full-saturated".into(),
            detail: "q0 high-water 8/8 with 300 full-stalls".into(),
            queue: Some(0),
            thread: Some("hw1".into()),
            file: "jpeg.c".into(),
            line: 41,
            stall_class: "queue-full".into(),
            charge_pct: 61.0,
        };
        let trials = vec![
            TrialRecord {
                id: 0,
                round: 0,
                arm: "baseline".into(),
                action: "paper default".into(),
                signal: ObsSignal::baseline(),
                cycles: 1000,
                best_before: u64::MAX,
                accepted: true,
                stalls: CycleBreakdown {
                    busy: 600,
                    queue_full: 300,
                    idle: 100,
                    ..Default::default()
                },
            },
            TrialRecord {
                id: 1,
                round: 1,
                arm: "queue-depth".into(),
                action: "q0 depth 8\u{2192}32".into(),
                signal: signal.clone(),
                cycles: 800,
                best_before: 1000,
                accepted: true,
                stalls: CycleBreakdown {
                    busy: 600,
                    queue_full: 100,
                    idle: 100,
                    ..Default::default()
                },
            },
        ];
        TuningReport {
            bench: "jpeg".into(),
            seed: 7,
            rounds: 1,
            baseline_cycles: 1000,
            tuned_cycles: 800,
            trials,
            tuned: TunedConfig { partitions: None, sw_fraction: None, queue_depths: vec![(0, 32)] },
            diff: diff(&base, &tuned),
            hints: vec!["depth of q0 raised 8\u{2192}32 because line 41 of jpeg.c charged 61% of \
                 stalls to queue-full"
                .into()],
        }
    }

    #[test]
    fn json_is_valid_and_carries_the_story() {
        let r = report();
        let doc = json::parse(&r.to_json()).expect("tuning report JSON parses");
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("jpeg"));
        assert_eq!(doc.get("baseline_cycles").unwrap().as_u64(), Some(1000));
        assert_eq!(doc.get("tuned_cycles").unwrap().as_u64(), Some(800));
        let trials = doc.get("trials").unwrap().as_arr().unwrap();
        assert_eq!(trials.len(), 2);
        let t1 = &trials[1];
        assert_eq!(t1.get("arm").unwrap().as_str(), Some("queue-depth"));
        assert_eq!(t1.get("signal").unwrap().get("line").unwrap().as_u64(), Some(41));
        // The embedded diff parses as part of the same document.
        assert_eq!(doc.get("diff").unwrap().get("cycle_delta").unwrap().as_f64(), Some(-200.0));
    }

    #[test]
    fn diff_proof_reconciles_exactly() {
        let r = report();
        let total: i64 = r.diff.attribution.iter().map(|c| c.delta).sum();
        assert_eq!(total, r.tuned_cycles as i64 - r.baseline_cycles as i64);
    }

    #[test]
    fn report_is_byte_deterministic() {
        let (a, b) = (report(), report());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.search_trace(), b.search_trace());
    }

    #[test]
    fn search_trace_has_arm_tracks_and_counter() {
        let r = report();
        let doc = json::parse(&r.search_trace()).expect("search trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let count =
            |ph: &str| events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some(ph)).count();
        assert_eq!(count("X"), 2, "one slice per trial");
        assert_eq!(count("C"), 2, "best-so-far sample per trial");
        assert_eq!(count("i"), 2, "accepted-move instants");
        // Arm tracks named after the arms.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"arm: baseline"), "{names:?}");
        assert!(names.contains(&"arm: queue-depth"), "{names:?}");
    }

    #[test]
    fn render_text_names_signal_and_line() {
        let t = report().render_text();
        assert!(t.contains("1000 \u{2192} 800 cycles"), "{t}");
        assert!(t.contains("q0 depth 8\u{2192}32"), "{t}");
        assert!(t.contains("line 41 of jpeg.c"), "{t}");
        assert!(t.contains("61% of stalls"), "{t}");
    }

    #[test]
    fn tuned_config_flags_round_trip_shape() {
        let c = TunedConfig {
            partitions: None,
            sw_fraction: Some(0.15),
            queue_depths: vec![(2, 32), (5, 16)],
        };
        assert_eq!(c.as_flags(), "--sw-fraction 0.15 --queue-depths q2=32,q5=16");
        let p = TunedConfig { partitions: Some(2), sw_fraction: None, queue_depths: vec![] };
        assert_eq!(p.as_flags(), "--partitions 2");
        assert!(TunedConfig::default().is_default());
        assert_eq!(TunedConfig::default().as_flags(), "(paper default)");
    }
}
