//! Interval-sampled counter timelines: the temporal axis of the
//! observability layer. The simulator (with `SimConfig::sample_interval`
//! set) snapshots every always-on counter at each interval boundary and
//! records the *delta* over the window, so a [`Timeline`] is a lossless
//! decomposition of the end-of-run totals — per-interval deltas sum
//! exactly to the final `SimMetrics` for every thread and queue (tested in
//! the rt suite). Phase segmentation ([`crate::phase`]), per-phase diff
//! attribution ([`crate::diff::phase_attribution`]), and the Perfetto
//! counter-track export all consume this one structure.

use crate::json::{self, Json};
use crate::profile::CycleBreakdown;
use std::fmt::Write as _;

/// Stall-class display names in `CycleBreakdown::as_array` order (shared
/// with the diff engine's rendering).
pub const CLASS_NAMES: [&str; 7] =
    ["busy", "queue-full", "queue-empty", "sem", "mem-bus", "module-bus", "idle"];

/// One queue's activity over a single sample window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueWindow {
    /// Values pushed during the window.
    pub pushes: u64,
    /// Values popped during the window.
    pub pops: u64,
    /// Producer cycles blocked on a full queue during the window.
    pub full_stalls: u64,
    /// Consumer cycles blocked on an empty queue during the window.
    pub empty_stalls: u64,
    /// Instantaneous occupancy at the window's closing cycle (a level,
    /// not a delta — the Perfetto counter track plots this directly).
    pub occupancy: u32,
}

impl QueueWindow {
    fn add(&mut self, o: &QueueWindow) {
        self.pushes += o.pushes;
        self.pops += o.pops;
        self.full_stalls += o.full_stalls;
        self.empty_stalls += o.empty_stalls;
        // Totals keep the last window's level (the end-of-run occupancy).
        self.occupancy = o.occupancy;
    }
}

/// Counter deltas over one sample window, cycles `[start, end]` inclusive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interval {
    /// First cycle covered (previous boundary + 1; the first interval
    /// starts at cycle 1).
    pub start: u64,
    /// Last cycle covered (a multiple of the sample interval, except for
    /// the final partial window flushed when the run halts mid-interval).
    pub end: u64,
    /// Per-thread cycle deltas by stall class, in `thread_names` order.
    pub threads: Vec<CycleBreakdown>,
    /// Per-queue activity, in `queue_names` order.
    pub queues: Vec<QueueWindow>,
}

impl Interval {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start + 1
    }
}

/// The sampled counter timeline of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Nominal window length in cycles (the last interval may be shorter).
    pub sample_interval: u64,
    /// Track names in agent order (`cpu`, `hw1`, ...).
    pub thread_names: Vec<String>,
    /// Queue names in id order (`q0`, `q1`, ...).
    pub queue_names: Vec<String>,
    /// Consecutive, non-overlapping windows covering cycles
    /// `[1, total_cycles]` exactly.
    pub intervals: Vec<Interval>,
}

fn add_breakdown(acc: &mut CycleBreakdown, d: &CycleBreakdown) {
    acc.busy += d.busy;
    acc.queue_full += d.queue_full;
    acc.queue_empty += d.queue_empty;
    acc.sem += d.sem;
    acc.mem_bus += d.mem_bus;
    acc.module_bus += d.module_bus;
    acc.idle += d.idle;
}

impl Timeline {
    /// Total cycles covered (the run's cycle count).
    pub fn total_cycles(&self) -> u64 {
        self.intervals.last().map(|iv| iv.end).unwrap_or(0)
    }

    /// Per-thread deltas summed over all intervals; equals the end-of-run
    /// `ClassCycles` totals by construction.
    pub fn thread_totals(&self) -> Vec<CycleBreakdown> {
        let mut totals = vec![CycleBreakdown::default(); self.thread_names.len()];
        for iv in &self.intervals {
            for (acc, d) in totals.iter_mut().zip(&iv.threads) {
                add_breakdown(acc, d);
            }
        }
        totals
    }

    /// Per-queue activity summed over all intervals (occupancy keeps the
    /// final window's level); push/pop/stall sums equal the end-of-run
    /// `QueueStat` totals by construction.
    pub fn queue_totals(&self) -> Vec<QueueWindow> {
        let mut totals = vec![QueueWindow::default(); self.queue_names.len()];
        for iv in &self.intervals {
            for (acc, w) in totals.iter_mut().zip(&iv.queues) {
                acc.add(w);
            }
        }
        totals
    }

    /// Serialize as a compact JSON document. Per-interval numbers are
    /// positional arrays (class order = [`CLASS_NAMES`], queue fields =
    /// pushes/pops/full/empty/occupancy) to keep golden files small.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"twill-timeline-v1\",\n");
        let _ = writeln!(out, "  \"sample_interval\": {},", self.sample_interval);
        let names =
            |ns: &[String]| ns.iter().map(|n| json::quote(n)).collect::<Vec<_>>().join(", ");
        let _ = writeln!(out, "  \"threads\": [{}],", names(&self.thread_names));
        let _ = writeln!(out, "  \"queues\": [{}],", names(&self.queue_names));
        out.push_str("  \"intervals\": [");
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ =
                write!(out, "\n    {{\"start\": {}, \"end\": {}, \"threads\": [", iv.start, iv.end);
            for (j, t) in iv.threads.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let a = t.as_array();
                let _ = write!(
                    out,
                    "[{}, {}, {}, {}, {}, {}, {}]",
                    a[0], a[1], a[2], a[3], a[4], a[5], a[6]
                );
            }
            out.push_str("], \"queues\": [");
            for (j, q) in iv.queues.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "[{}, {}, {}, {}, {}]",
                    q.pushes, q.pops, q.full_stalls, q.empty_stalls, q.occupancy
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a document produced by [`Timeline::to_json`].
    pub fn from_json(doc: &Json) -> Result<Timeline, String> {
        let u64s = |v: &Json, what: &str| -> Result<Vec<u64>, String> {
            v.as_arr()
                .ok_or_else(|| format!("timeline: {what} is not an array"))?
                .iter()
                .map(|n| n.as_u64().ok_or_else(|| format!("timeline: non-integer in {what}")))
                .collect()
        };
        let names = |key: &str| -> Result<Vec<String>, String> {
            doc.get(key)
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("timeline: missing {key}"))?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("timeline: non-string in {key}"))
                })
                .collect()
        };
        let mut t = Timeline {
            sample_interval: doc
                .get("sample_interval")
                .and_then(|v| v.as_u64())
                .ok_or("timeline: missing sample_interval")?,
            thread_names: names("threads")?,
            queue_names: names("queues")?,
            intervals: Vec::new(),
        };
        for iv in doc.get("intervals").and_then(|v| v.as_arr()).unwrap_or(&[]) {
            let field = |key: &str| {
                iv.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("timeline: interval missing {key}"))
            };
            let mut interval =
                Interval { start: field("start")?, end: field("end")?, ..Default::default() };
            for row in iv.get("threads").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let a = u64s(row, "thread row")?;
                if a.len() != 7 {
                    return Err("timeline: thread row needs 7 classes".into());
                }
                interval.threads.push(CycleBreakdown {
                    busy: a[0],
                    queue_full: a[1],
                    queue_empty: a[2],
                    sem: a[3],
                    mem_bus: a[4],
                    module_bus: a[5],
                    idle: a[6],
                });
            }
            for row in iv.get("queues").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let a = u64s(row, "queue row")?;
                if a.len() != 5 {
                    return Err("timeline: queue row needs 5 fields".into());
                }
                interval.queues.push(QueueWindow {
                    pushes: a[0],
                    pops: a[1],
                    full_stalls: a[2],
                    empty_stalls: a[3],
                    occupancy: a[4] as u32,
                });
            }
            if interval.threads.len() != t.thread_names.len()
                || interval.queues.len() != t.queue_names.len()
            {
                return Err("timeline: interval row count mismatch".into());
            }
            t.intervals.push(interval);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let bd = |busy, qf| CycleBreakdown { busy, queue_full: qf, ..Default::default() };
        Timeline {
            sample_interval: 100,
            thread_names: vec!["cpu".into(), "hw1".into()],
            queue_names: vec!["q0".into()],
            intervals: vec![
                Interval {
                    start: 1,
                    end: 100,
                    threads: vec![bd(90, 10), bd(100, 0)],
                    queues: vec![QueueWindow {
                        pushes: 40,
                        pops: 38,
                        full_stalls: 10,
                        empty_stalls: 0,
                        occupancy: 2,
                    }],
                },
                Interval {
                    start: 101,
                    end: 130,
                    threads: vec![bd(30, 0), bd(25, 5)],
                    queues: vec![QueueWindow {
                        pushes: 2,
                        pops: 4,
                        full_stalls: 0,
                        empty_stalls: 5,
                        occupancy: 0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_intervals() {
        let t = sample();
        assert_eq!(t.total_cycles(), 130);
        let threads = t.thread_totals();
        assert_eq!(threads[0].busy, 120);
        assert_eq!(threads[0].queue_full, 10);
        assert_eq!(threads[1].busy, 125);
        let queues = t.queue_totals();
        assert_eq!(queues[0].pushes, 42);
        assert_eq!(queues[0].pops, 42);
        assert_eq!(queues[0].full_stalls, 10);
        assert_eq!(queues[0].empty_stalls, 5);
        assert_eq!(queues[0].occupancy, 0, "totals keep the final level");
    }

    #[test]
    fn json_round_trips_to_equal_timeline() {
        let t = sample();
        let doc = json::parse(&t.to_json()).expect("timeline JSON must parse");
        assert_eq!(Timeline::from_json(&doc).unwrap(), t);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let bad = json::parse(r#"{"sample_interval": 10}"#).unwrap();
        assert!(Timeline::from_json(&bad).unwrap_err().contains("threads"));
        let short_row = r#"{"schema": "twill-timeline-v1", "sample_interval": 10,
            "threads": ["cpu"], "queues": [],
            "intervals": [{"start": 1, "end": 10, "threads": [[1, 2]], "queues": []}]}"#;
        let doc = json::parse(short_row).unwrap();
        assert!(Timeline::from_json(&doc).unwrap_err().contains("7 classes"));
    }

    #[test]
    fn empty_timeline_round_trips() {
        let t = Timeline {
            sample_interval: 64,
            thread_names: vec!["cpu".into()],
            queue_names: vec![],
            intervals: vec![],
        };
        let doc = json::parse(&t.to_json()).unwrap();
        assert_eq!(Timeline::from_json(&doc).unwrap(), t);
        assert_eq!(t.total_cycles(), 0);
    }
}
