//! Property tests for the diff engine's algebra (ISSUE 3): over pairs of
//! accounting-consistent metric reports with a shared structure,
//!
//! * `diff(a, a)` is all-zero,
//! * the ranked class attribution sums to the total cycle delta,
//! * `diff(a, b)` is the exact negation of `diff(b, a)`.
//!
//! "Accounting-consistent" mirrors the invariant the simulator asserts in
//! debug builds: every thread's seven cycle classes sum to the run's
//! cycle count.

use proptest::collection::vec;
use proptest::prelude::*;
use twill_obs::diff::diff;
use twill_obs::{FaultMetrics, QueueMetrics, SimMetrics, ThreadMetrics};

/// Split `total` into 7 parts via 6 sorted cut points.
fn split7(total: u64, mut cuts: Vec<u64>) -> [u64; 7] {
    cuts.sort_unstable();
    let mut parts = [0u64; 7];
    let mut prev = 0;
    for (i, &c) in cuts.iter().enumerate() {
        parts[i] = c - prev;
        prev = c;
    }
    parts[6] = total - prev;
    parts
}

fn thread(i: usize, classes: [u64; 7]) -> ThreadMetrics {
    ThreadMetrics {
        name: if i == 0 { "cpu".into() } else { format!("hw{i}") },
        busy: classes[0],
        queue_full: classes[1],
        queue_empty: classes[2],
        sem: classes[3],
        mem_bus: classes[4],
        module_bus: classes[5],
        idle: classes[6],
    }
}

/// Build one consistent run from a cycle count, per-thread cut points,
/// and per-queue raw stats.
fn run(cycles: u64, thread_cuts: Vec<Vec<u64>>, queue_stats: Vec<(u64, u64, u64)>) -> SimMetrics {
    SimMetrics {
        cycles,
        threads: thread_cuts
            .into_iter()
            .enumerate()
            .map(|(i, cuts)| thread(i, split7(cycles, cuts)))
            .collect(),
        queues: queue_stats
            .into_iter()
            .enumerate()
            .map(|(i, (pushes, full, empty))| QueueMetrics {
                name: format!("q{i}"),
                depth: 8,
                pushes,
                pops: pushes,
                high_water: (pushes % 9) as u32,
                full_stalls: full,
                empty_stalls: empty,
                occupancy_hist: vec![pushes, full, empty],
            })
            .collect(),
        dropped_events: 0,
        faults: FaultMetrics::default(),
    }
}

/// A pair of consistent runs over the same thread/queue structure.
fn run_pair() -> impl Strategy<Value = (SimMetrics, SimMetrics)> {
    (100u64..50_000, 100u64..50_000, 1usize..5, 0usize..4).prop_flat_map(
        |(ca, cb, nthreads, nqueues)| {
            (
                Just((ca, cb)),
                vec(vec(0u64..=ca, 6), nthreads),
                vec(vec(0u64..=cb, 6), nthreads),
                vec((0u64..10_000, 0u64..10_000, 0u64..10_000), nqueues),
                vec((0u64..10_000, 0u64..10_000, 0u64..10_000), nqueues),
            )
                .prop_map(|((ca, cb), ta, tb, qa, qb)| (run(ca, ta, qa), run(cb, tb, qb)))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn diff_with_self_is_all_zero((a, _b) in run_pair()) {
        let d = diff(&a, &a);
        prop_assert!(d.is_zero(), "{d:?}");
        prop_assert_eq!(d.cycle_delta, 0);
        prop_assert!(d.attribution.iter().all(|c| c.delta == 0));
        prop_assert!(d.queues.is_empty());
    }

    #[test]
    fn attribution_sums_to_total_cycle_delta((a, b) in run_pair()) {
        let d = diff(&a, &b);
        prop_assert_eq!(d.cycle_delta, b.cycles as i64 - a.cycles as i64);
        let attributed: i64 = d.attribution.iter().map(|c| c.delta).sum();
        prop_assert_eq!(attributed, d.cycle_delta, "{:?}", d);
        // Accounting consistency means *every* matched thread's class
        // deltas decompose the same total, not just the critical one.
        for t in &d.threads {
            prop_assert_eq!(t.deltas.iter().sum::<i64>(), d.cycle_delta, "{:?}", t);
        }
    }

    #[test]
    fn diff_negates_under_argument_swap((a, b) in run_pair()) {
        let fwd = diff(&a, &b);
        let rev = diff(&b, &a);
        prop_assert_eq!(fwd.cycle_delta, -rev.cycle_delta);
        prop_assert_eq!(fwd.structural, rev.structural);
        prop_assert_eq!(&fwd.attribution_thread, &rev.attribution_thread);
        prop_assert_eq!(fwd.attribution.len(), rev.attribution.len());
        for (x, y) in fwd.attribution.iter().zip(&rev.attribution) {
            prop_assert_eq!(x.class, y.class);
            prop_assert_eq!(x.delta, -y.delta);
        }
        prop_assert_eq!(fwd.queues.len(), rev.queues.len());
        for (x, y) in fwd.queues.iter().zip(&rev.queues) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.full_stalls, -y.full_stalls);
            prop_assert_eq!(x.empty_stalls, -y.empty_stalls);
            prop_assert_eq!(x.high_water, -y.high_water);
            prop_assert_eq!(x.pushes, -y.pushes);
            prop_assert_eq!(x.pops, -y.pops);
        }
    }

    #[test]
    fn rendered_explanations_never_panic_and_json_parses((a, b) in run_pair()) {
        let d = diff(&a, &b);
        let text = d.render_text("prop");
        prop_assert!(text.contains("cycles"));
        let doc = twill_obs::json::parse(&d.to_json("prop")).expect("diff JSON parses");
        prop_assert_eq!(doc.get("cycle_delta").unwrap().as_f64(), Some(d.cycle_delta as f64));
    }
}
