//! Property test: the Perfetto exporter must never panic, and must emit
//! parseable JSON, for *any* event sequence — including ones a truncated
//! ring buffer could produce (orphan retires, interleaved tracks,
//! out-of-order cycles).

use proptest::prelude::*;
use twill_obs::event::{Event, EventKind, OpClass};
use twill_obs::json;
use twill_obs::perfetto::TraceBuilder;

fn arb_op() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::Enqueue),
        Just(OpClass::Dequeue),
        Just(OpClass::SemRaise),
        Just(OpClass::SemLower),
        Just(OpClass::MemLoad),
        Just(OpClass::MemStore),
        Just(OpClass::Out),
        Just(OpClass::In),
    ]
}

fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        arb_op().prop_map(|op| EventKind::OpStart { op }).boxed(),
        arb_op().prop_map(|op| EventKind::OpRetire { op }).boxed(),
        arb_op().prop_map(|op| EventKind::OpCancel { op }).boxed(),
        (0u16..4, 0u32..64)
            .prop_map(|(queue, occupancy)| EventKind::QueuePush { queue, occupancy })
            .boxed(),
        (0u16..4, 0u32..64)
            .prop_map(|(queue, occupancy)| EventKind::QueuePop { queue, occupancy })
            .boxed(),
        (0u16..4, any::<bool>())
            .prop_map(|(queue, full)| EventKind::QueueStall { queue, full })
            .boxed(),
        (0u16..4).prop_map(|sem| EventKind::SemWait { sem }).boxed(),
        (0u16..4, 0u32..16).prop_map(|(sem, value)| EventKind::SemSignal { sem, value }).boxed(),
        (0u16..8).prop_map(|to| EventKind::ContextSwitch { to }).boxed(),
        any::<i32>().prop_map(|value| EventKind::Output { value }).boxed(),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u64..100_000, 0u16..6, arb_kind()).prop_map(|(cycle, track, kind)| Event {
        cycle,
        track,
        kind,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn export_never_panics_and_always_parses(
        events in proptest::collection::vec(arb_event(), 0..200),
        dropped in 0u64..1_000_000,
    ) {
        let n_events = events.len();
        let out = TraceBuilder::new()
            .threads(["cpu", "hw1", "hw2"])
            .queues(["q0", "q1"])
            .events(events, dropped)
            .meta("source", "proptest")
            .build();
        let doc = json::parse(&out);
        prop_assert!(doc.is_ok(), "export must be valid JSON: {:?}", doc.err());
        let doc = doc.unwrap();
        let traced = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Every input event maps to at most one output record (orphan
        // retires are skipped), plus bounded metadata records.
        prop_assert!(traced.len() <= n_events + 16);
        let want_dropped = format!("{dropped}");
        prop_assert_eq!(
            doc.get("otherData").unwrap().get("dropped_events").unwrap().as_str(),
            Some(want_dropped.as_str())
        );
        // B/E nesting must stay balanced per track (no orphan E survives).
        let mut depth = std::collections::HashMap::new();
        for e in traced {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let d = depth.entry(tid).or_insert(0i64);
            match ph {
                "B" => *d += 1,
                "E" => {
                    *d -= 1;
                    prop_assert!(*d >= 0, "unmatched E on tid {}", tid);
                }
                _ => {}
            }
        }
    }
}
