//! Property tests: every optimization pass preserves the observable
//! behaviour of randomly generated straight-line + branchy IR programs.

use proptest::prelude::*;
use twill_ir::{BinOp, CmpOp, FuncBuilder, Module, Ty, Value};

/// Build a random module: a main that computes over two inputs with a
/// diamond and a bounded loop, parameterized by generated op codes.
fn build_module(ops: &[(usize, i8)], loop_iters: u8) -> Module {
    let mut b = FuncBuilder::new("main", vec![], Ty::I32);
    let entry = b.create_block("entry");
    let header = b.create_block("header");
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    b.func.entry = entry;

    b.switch_to(entry);
    let x0 = b.input();
    let y0 = b.input();
    b.br(header);

    b.switch_to(header);
    let i = b.phi(Ty::I32, vec![]);
    let acc = b.phi(Ty::I32, vec![]);
    let c = b.cmp(CmpOp::Slt, i, Value::imm32(loop_iters as i64 % 17 + 1));
    b.cond_br(c, body, exit);

    b.switch_to(body);
    let mut cur = acc;
    for &(code, imm) in ops {
        let op = BinOp::ALL[code % BinOp::ALL.len()];
        let rhs = if op.can_trap() {
            Value::imm32((imm as i64).unsigned_abs().max(1) as i64)
        } else if matches!(op, BinOp::Shl | BinOp::AShr | BinOp::LShr) {
            Value::imm32((imm as i64) & 7)
        } else {
            Value::imm32(imm as i64)
        };
        cur = b.bin(op, cur, rhs);
    }
    let mixed = b.xor(cur, x0);
    let ni = b.add(i, Value::imm32(1));
    b.br(header);

    b.switch_to(exit);
    let res = b.add(acc, y0);
    b.out(res);
    b.ret(Some(res));

    // Patch the phis now that we know the values.
    let f = &mut b.func;
    if let twill_ir::Op::Phi(inc) = &mut f.inst_mut(i.as_inst().unwrap()).op {
        *inc = vec![(entry, Value::imm32(0)), (body, ni)];
    }
    if let twill_ir::Op::Phi(inc) = &mut f.inst_mut(acc.as_inst().unwrap()).op {
        *inc = vec![(entry, Value::imm32(1)), (body, mixed)];
    }
    let mut m = Module::new("gen");
    m.add_func(b.finish());
    twill_ir::layout::assign_global_addrs(&mut m);
    twill_ir::verifier::assert_valid(&m);
    m
}

fn run(m: &Module, input: Vec<i32>) -> Vec<i32> {
    twill_ir::interp::run_main(m, input, 10_000_000).expect("run").0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constfold_preserves(ops in proptest::collection::vec((any::<usize>(), any::<i8>()), 1..12),
                           iters in any::<u8>(), a in any::<i16>(), b in any::<i16>()) {
        let mut m = build_module(&ops, iters);
        let before = run(&m, vec![a as i32, b as i32]);
        twill_passes::constfold::constfold(&mut m.funcs[0]);
        twill_passes::utils::assert_valid_ssa(&m);
        prop_assert_eq!(before, run(&m, vec![a as i32, b as i32]));
    }

    #[test]
    fn gvn_preserves(ops in proptest::collection::vec((any::<usize>(), any::<i8>()), 1..12),
                     iters in any::<u8>(), a in any::<i16>(), b in any::<i16>()) {
        let mut m = build_module(&ops, iters);
        let before = run(&m, vec![a as i32, b as i32]);
        twill_passes::gvn::gvn(&mut m.funcs[0]);
        twill_passes::utils::assert_valid_ssa(&m);
        prop_assert_eq!(before, run(&m, vec![a as i32, b as i32]));
    }

    #[test]
    fn dce_preserves(ops in proptest::collection::vec((any::<usize>(), any::<i8>()), 1..12),
                     iters in any::<u8>(), a in any::<i16>(), b in any::<i16>()) {
        let mut m = build_module(&ops, iters);
        let before = run(&m, vec![a as i32, b as i32]);
        twill_passes::dce::dce_module(&mut m);
        twill_passes::utils::assert_valid_ssa(&m);
        prop_assert_eq!(before, run(&m, vec![a as i32, b as i32]));
    }

    #[test]
    fn simplifycfg_and_ifconvert_preserve(
        ops in proptest::collection::vec((any::<usize>(), any::<i8>()), 1..12),
        iters in any::<u8>(), a in any::<i16>(), b in any::<i16>()) {
        let mut m = build_module(&ops, iters);
        let before = run(&m, vec![a as i32, b as i32]);
        twill_passes::simplifycfg::simplifycfg(&mut m.funcs[0]);
        twill_passes::ifconvert::ifconvert(&mut m.funcs[0]);
        twill_passes::utils::assert_valid_ssa(&m);
        prop_assert_eq!(before, run(&m, vec![a as i32, b as i32]));
    }

    #[test]
    fn whole_pipeline_preserves(
        ops in proptest::collection::vec((any::<usize>(), any::<i8>()), 1..12),
        iters in any::<u8>(), a in any::<i16>(), b in any::<i16>()) {
        let mut m = build_module(&ops, iters);
        let before = run(&m, vec![a as i32, b as i32]);
        twill_passes::run_standard_pipeline(&mut m, &Default::default());
        twill_passes::utils::assert_valid_ssa(&m);
        prop_assert_eq!(before, run(&m, vec![a as i32, b as i32]));
    }
}
