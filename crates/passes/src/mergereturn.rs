//! Merge multiple `ret` instructions into one exit block ("mergereturn").
//!
//! The thesis runs LLVM's `-mergereturn` so that each function has a unique
//! exit, which both the DSWP extractor and the HLS FSM generator rely on.

use twill_ir::{Function, Op, Ty, Value};

pub fn mergereturn(f: &mut Function) -> bool {
    let mut ret_blocks: Vec<twill_ir::BlockId> = Vec::new();
    for b in f.block_ids() {
        if let Some(t) = f.block(b).terminator() {
            if matches!(f.inst(t).op, Op::Ret(_)) {
                ret_blocks.push(b);
            }
        }
    }
    if ret_blocks.len() <= 1 {
        return false;
    }

    let exit = f.create_block("unified.exit");
    // The merged return attributes to the first original return's line.
    let ret_loc = f.loc(f.block(ret_blocks[0]).terminator().unwrap());
    if f.ret == Ty::Void {
        for &b in &ret_blocks {
            let t = f.block(b).terminator().unwrap();
            f.inst_mut(t).op = Op::Br(exit);
        }
        let ret = f.create_inst_at(Op::Ret(None), Ty::Void, ret_loc);
        f.block_mut(exit).insts.push(ret);
    } else {
        let mut incoming: Vec<(twill_ir::BlockId, Value)> = Vec::new();
        for &b in &ret_blocks {
            let t = f.block(b).terminator().unwrap();
            let v = match f.inst(t).op {
                Op::Ret(Some(v)) => v,
                _ => unreachable!("non-void function with bare ret"),
            };
            incoming.push((b, v));
            f.inst_mut(t).op = Op::Br(exit);
        }
        let phi = f.create_inst_at(Op::Phi(incoming), f.ret, ret_loc);
        let ret = f.create_inst_at(Op::Ret(Some(Value::Inst(phi))), Ty::Void, ret_loc);
        f.block_mut(exit).insts.push(phi);
        f.block_mut(exit).insts.push(ret);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    #[test]
    fn merges_value_returns_with_phi() {
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = in
  %1 = cmp sgt %0, 0:i32
  condbr %1, bb1, bb2
bb1:
  ret 1:i32
bb2:
  ret 2:i32
}
"#;
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (o1, r1, _) = twill_ir::interp::run_main(&m, vec![5], 1000).unwrap();
        assert!(mergereturn(&mut m.funcs[0]));
        crate::utils::assert_valid_ssa(&m);
        // Exactly one ret now.
        let rets = m.funcs[0]
            .inst_ids_in_layout()
            .iter()
            .filter(|(_, i)| matches!(m.funcs[0].inst(*i).op, Op::Ret(_)))
            .count();
        assert_eq!(rets, 1);
        let (o2, r2, _) = twill_ir::interp::run_main(&m, vec![5], 1000).unwrap();
        assert_eq!((o1, r1), (o2.clone(), r2));
        let (_, r3, _) = twill_ir::interp::run_main(&m, vec![-5], 1000).unwrap();
        assert_eq!(r3, Some(2));
        let _ = o2;
    }

    #[test]
    fn merges_void_returns() {
        let src = r#"
func @f(i1) -> void {
bb0:
  condbr %a0, bb1, bb2
bb1:
  out 1:i32
  ret
bb2:
  out 2:i32
  ret
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(mergereturn(&mut m.funcs[0]));
        crate::utils::assert_valid_ssa(&m);
        assert_eq!(m.funcs[0].blocks.len(), 4);
    }

    #[test]
    fn single_return_untouched() {
        let src = "func @f() -> void {\nbb0:\n  ret\n}\n";
        let mut m = parse_module(src).unwrap();
        assert!(!mergereturn(&mut m.funcs[0]));
    }
}
