//! Dominator and post-dominator trees with dominance frontiers.
//!
//! Implemented with the Cooper–Harvey–Kennedy iterative algorithm over a
//! generic edge view so the same core serves both directions. The
//! post-dominator tree uses a virtual exit node that every `ret` block (and,
//! for infinite loops, one representative of every exit-free SCC) is
//! connected to, so the tree is total even for non-terminating regions —
//! the DSWP extractor relies on that.

use twill_ir::{BlockId, Function};

/// Generic dominator computation over an explicit graph.
///
/// `n_nodes` real nodes, `entry`, plus successor/predecessor closures.
fn compute_idoms(
    n: usize,
    entry: usize,
    preds: &[Vec<usize>],
    rpo: &[usize],
) -> Vec<Option<usize>> {
    // rpo_index[node] = position in reverse postorder.
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            // Pick the first processed predecessor.
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[entry] = None; // entry has no idom by convention
    idom
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], a: usize, b: usize) -> usize {
    let mut x = a;
    let mut y = b;
    while x != y {
        while rpo_index[x] > rpo_index[y] {
            x = idom[x].expect("intersect walked past root");
        }
        while rpo_index[y] > rpo_index[x] {
            y = idom[y].expect("intersect walked past root");
        }
    }
    x
}

fn postorder(n: usize, entry: usize, succs: &[Vec<usize>]) -> Vec<usize> {
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    state[entry] = 1;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        if *idx < succs[node].len() {
            let next = succs[node][*idx];
            *idx += 1;
            if state[next] == 0 {
                state[next] = 1;
                stack.push((next, 0));
            }
        } else {
            state[node] = 2;
            order.push(node);
            stack.pop();
        }
    }
    order
}

/// Dominance frontiers per node (Cytron et al.).
fn compute_frontiers(
    n: usize,
    preds: &[Vec<usize>],
    idom: &[Option<usize>],
    entry: usize,
) -> Vec<Vec<usize>> {
    let _ = entry;
    let mut df: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in 0..n {
        if preds[b].len() < 2 {
            continue;
        }
        for &p in &preds[b] {
            let mut runner = p;
            while Some(runner) != idom[b] {
                if !df[runner].contains(&b) {
                    df[runner].push(b);
                }
                match idom[runner] {
                    Some(next) => runner = next,
                    None => break, // reached the root
                }
            }
        }
    }
    df
}

/// Forward dominator tree over a function's CFG.
pub struct DomTree {
    /// Immediate dominator of each block (None for entry / unreachable).
    pub idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Reverse-postorder of reachable blocks.
    pub rpo: Vec<BlockId>,
    /// `depth[b]` = distance from entry in the dom tree (entry = 0).
    pub depth: Vec<u32>,
    reachable: Vec<bool>,
}

impl DomTree {
    pub fn new(f: &Function) -> DomTree {
        let n = f.blocks.len();
        let entry = f.entry.index();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, sb) in succs.iter_mut().enumerate() {
            for s in f.successors(BlockId::new(b)) {
                sb.push(s.index());
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let po = postorder(n, entry, &succs);
        let mut reachable = vec![false; n];
        for &b in &po {
            reachable[b] = true;
        }
        for b in 0..n {
            if reachable[b] {
                for &s in &succs[b] {
                    if reachable[s] && !preds[s].contains(&b) {
                        preds[s].push(b);
                    }
                }
            }
        }
        let rpo: Vec<usize> = po.iter().rev().copied().collect();
        let idom_raw = compute_idoms(n, entry, &preds, &rpo);
        let frontier_raw = compute_frontiers(n, &preds, &idom_raw, entry);

        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (b, id) in idom_raw.iter().enumerate() {
            if let Some(d) = *id {
                children[d].push(BlockId::new(b));
            }
        }
        let mut depth = vec![0u32; n];
        for &b in &rpo {
            if let Some(d) = idom_raw[b] {
                depth[b] = depth[d] + 1;
            }
        }
        DomTree {
            idom: idom_raw.iter().map(|o| o.map(BlockId::new)).collect(),
            children,
            frontier: frontier_raw
                .into_iter()
                .map(|v| v.into_iter().map(BlockId::new).collect())
                .collect(),
            rpo: rpo.into_iter().map(BlockId::new).collect(),
            depth,
            reachable,
        }
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Does `a` dominate `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Nearest common dominator of two reachable blocks.
    pub fn nearest_common_dominator(&self, a: BlockId, b: BlockId) -> BlockId {
        let mut x = a;
        let mut y = b;
        while x != y {
            while self.depth[x.index()] > self.depth[y.index()] {
                x = self.idom[x.index()].expect("walked past entry");
            }
            while self.depth[y.index()] > self.depth[x.index()] {
                y = self.idom[y.index()].expect("walked past entry");
            }
            if x != y {
                x = self.idom[x.index()].expect("walked past entry");
                y = self.idom[y.index()].expect("walked past entry");
            }
        }
        x
    }

    /// Pre-order traversal of the dominator tree from the entry.
    pub fn preorder(&self, entry: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children[b.index()].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// Post-dominator tree: dominators of the reversed CFG with a virtual exit.
///
/// Node indices are block indices; the virtual exit is index `n`.
pub struct PostDomTree {
    /// Immediate post-dominator. `None` means the virtual exit is the ipdom
    /// (i.e. the block exits the function directly) or the block is
    /// unreachable in the reverse graph.
    pub ipdom: Vec<Option<BlockId>>,
    /// Whether each block reaches the exit (is reverse-reachable).
    pub reaches_exit: Vec<bool>,
    /// Post-dominance frontier (used for control-dependence computation).
    pub frontier: Vec<Vec<BlockId>>,
    depth: Vec<u32>,
    n: usize,
}

impl PostDomTree {
    pub fn new(f: &Function) -> PostDomTree {
        let n = f.blocks.len();
        let virt = n; // virtual exit node
        let total = n + 1;

        // Reverse graph: succ_rev[b] = preds of b in CFG; exit blocks get an
        // edge from virt. Also connect exit-free cycles to virt so every
        // block is reverse-reachable (needed for infinite server loops).
        let mut fwd_succs: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (b, fs) in fwd_succs.iter_mut().enumerate().take(n) {
            let ss = f.successors(BlockId::new(b));
            if ss.is_empty() {
                fs.push(virt);
            } else {
                for s in ss {
                    fs.push(s.index());
                }
            }
        }
        // Find forward-reachable blocks that cannot reach virt; attach them.
        let mut can_exit = vec![false; total];
        can_exit[virt] = true;
        // iterate to fixpoint (graphs are small)
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if !can_exit[b] && fwd_succs[b].iter().any(|&s| can_exit[s]) {
                    can_exit[b] = true;
                    changed = true;
                }
            }
        }
        for b in 0..n {
            if !can_exit[b] {
                // Part of an exit-free region: give it a virtual exit edge.
                // (One edge per block keeps the algorithm simple; only
                // relative post-dominance within the region matters.)
                fwd_succs[b].push(virt);
                can_exit[b] = true;
            }
        }

        // Build the reversed graph.
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); total];
        for b in 0..total {
            for &s in &fwd_succs[b] {
                rsuccs[s].push(b);
                rpreds[b].push(s);
            }
        }

        let po = postorder(total, virt, &rsuccs);
        let mut reachable = vec![false; total];
        for &b in &po {
            reachable[b] = true;
        }
        let rpo: Vec<usize> = po.iter().rev().copied().collect();
        let idom_raw = compute_idoms(total, virt, &rpreds, &rpo);
        let frontier_raw = compute_frontiers(total, &rpreds, &idom_raw, virt);

        let mut depth = vec![0u32; total];
        for &b in &rpo {
            if let Some(d) = idom_raw[b] {
                depth[b] = depth[d] + 1;
            }
        }

        PostDomTree {
            ipdom: (0..n)
                .map(|b| {
                    idom_raw[b].and_then(|d| if d == virt { None } else { Some(BlockId::new(d)) })
                })
                .collect(),
            reaches_exit: (0..n).map(|b| reachable[b]).collect(),
            frontier: frontier_raw[..n]
                .iter()
                .map(|v| v.iter().filter(|&&x| x != virt).map(|&x| BlockId::new(x)).collect())
                .collect(),
            depth: depth[..n].to_vec(),
            n,
        }
    }

    /// Does `a` post-dominate `b`? (Reflexive.)
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Walk up the post-dominator tree from `b` (exclusive), yielding each
    /// ancestor until the virtual exit.
    pub fn ancestors(&self, b: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut cur = b;
        while let Some(d) = self.ipdom[cur.index()] {
            out.push(d);
            cur = d;
            if out.len() > self.n {
                break; // cycle guard (shouldn't happen)
            }
        }
        out
    }

    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    /// Diamond: bb0 -> bb1, bb2 -> bb3
    const DIAMOND: &str = r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %0 = phi i32 [bb1: 1:i32], [bb2: 2:i32]
  ret %0
}
"#;

    #[test]
    fn diamond_dominators() {
        let m = parse_module(DIAMOND).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        assert_eq!(dt.idom[0], None);
        assert_eq!(dt.idom[1], Some(BlockId(0)));
        assert_eq!(dt.idom[2], Some(BlockId(0)));
        assert_eq!(dt.idom[3], Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let m = parse_module(DIAMOND).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        assert_eq!(dt.frontier[1], vec![BlockId(3)]);
        assert_eq!(dt.frontier[2], vec![BlockId(3)]);
        assert!(dt.frontier[0].is_empty());
        assert!(dt.frontier[3].is_empty());
    }

    #[test]
    fn diamond_postdominators() {
        let m = parse_module(DIAMOND).unwrap();
        let f = &m.funcs[0];
        let pdt = PostDomTree::new(f);
        assert_eq!(pdt.ipdom[0], Some(BlockId(3)));
        assert_eq!(pdt.ipdom[1], Some(BlockId(3)));
        assert_eq!(pdt.ipdom[2], Some(BlockId(3)));
        assert_eq!(pdt.ipdom[3], None); // exits to virtual exit
        assert!(pdt.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdt.post_dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn loop_dominators() {
        let src = r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb2: %1]
  %c = cmp slt %0, %a0
  condbr %c, bb2, bb3
bb2:
  %1 = add i32 %0, 1:i32
  br bb1
bb3:
  ret %0
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        assert_eq!(dt.idom[1], Some(BlockId(0)));
        assert_eq!(dt.idom[2], Some(BlockId(1)));
        assert_eq!(dt.idom[3], Some(BlockId(1)));
        // The loop header's frontier contains itself (back edge).
        assert!(dt.frontier[2].contains(&BlockId(1)));
        let pdt = PostDomTree::new(f);
        assert_eq!(pdt.ipdom[2], Some(BlockId(1)));
        assert!(pdt.post_dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn infinite_loop_is_handled() {
        let src = r#"
func @f() -> void {
bb0:
  br bb1
bb1:
  br bb1
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let pdt = PostDomTree::new(f);
        // Should not panic; both blocks reverse-reachable.
        assert!(pdt.reaches_exit[0]);
        assert!(pdt.reaches_exit[1]);
        let dt = DomTree::new(f);
        assert!(dt.dominates(BlockId(0), BlockId(1)));
    }

    #[test]
    fn unreachable_block_excluded() {
        let src = r#"
func @f() -> void {
bb0:
  ret
bb1:
  br bb0
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        assert!(dt.is_reachable(BlockId(0)));
        assert!(!dt.is_reachable(BlockId(1)));
        assert!(!dt.dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn ncd_in_nested_structure() {
        let src = r#"
func @f(i1, i1) -> void {
bb0:
  condbr %a0, bb1, bb4
bb1:
  condbr %a1, bb2, bb3
bb2:
  br bb5
bb3:
  br bb5
bb4:
  br bb5
bb5:
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        assert_eq!(dt.nearest_common_dominator(BlockId(2), BlockId(3)), BlockId(1));
        assert_eq!(dt.nearest_common_dominator(BlockId(2), BlockId(4)), BlockId(0));
        assert_eq!(dt.nearest_common_dominator(BlockId(5), BlockId(5)), BlockId(5));
    }

    #[test]
    fn preorder_visits_all_reachable() {
        let m = parse_module(DIAMOND).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        let pre = dt.preorder(f.entry);
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], f.entry);
    }
}
