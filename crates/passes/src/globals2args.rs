//! The thesis' first custom pass (§5.2): "fix" globals by passing their
//! addresses to all functions as parameters, so that after this pass the
//! only `gaddr` instructions in the program are in `main`.
//!
//! Rationale from the thesis: LegUp synthesizes globals as per-module FPGA
//! memory blocks that do not stay coherent across hardware threads, so Twill
//! rewrites every global access to go through the unified address space via
//! pointers threaded from `main`.
//!
//! Constant (read-only) globals are left in place — the follow-up
//! "constprop" stage can resolve them locally, matching the thesis' note
//! that constant globals get replaced by constant expressions.

use crate::callgraph::CallGraph;
use std::collections::BTreeSet;
use twill_ir::{FuncId, GlobalId, Module, Op, Ty, Value};

/// Run the pass. Returns the number of functions rewritten.
pub fn globals_to_args(m: &mut Module) -> usize {
    let Some(main) = m.find_func("main") else { return 0 };
    let cg = CallGraph::new(m);
    if cg.is_recursive() {
        return 0;
    }
    // Address-taken functions cannot change signature (callers are
    // unknown); they keep direct `gaddr` access — they run on the
    // processor anyway (DSWP pins indirect calls to software, where the
    // unified address space is native).
    let mut address_taken = vec![false; m.funcs.len()];
    for f in &m.funcs {
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::FuncAddr(t) = &f.inst(iid).op {
                address_taken[t.index()] = true;
            }
            if matches!(&f.inst(iid).op, Op::CallIndirect(..)) {
                // An indirect caller can't forward globals either.
            }
        }
    }

    // Per-function transitive set of non-constant globals referenced.
    let n = m.funcs.len();
    let mut needs: Vec<BTreeSet<GlobalId>> = vec![BTreeSet::new(); n];
    for fid in m.func_ids() {
        let f = m.func(fid);
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::GlobalAddr(g) = f.inst(iid).op {
                if !m.global(g).is_const {
                    needs[fid.index()].insert(g);
                }
            }
        }
    }
    // Propagate callee needs upward (reverse topo = callees first).
    for &fid in &cg.reverse_topo {
        let mut extra = BTreeSet::new();
        for &c in &cg.callees[fid.index()] {
            extra.extend(needs[c.index()].iter().copied());
        }
        needs[fid.index()].extend(extra);
    }

    // Rewrite every function except main: append one ptr param per needed
    // global; replace local `gaddr` of that global with the param.
    let mut rewritten = 0;
    let mut param_index: Vec<Vec<(GlobalId, u16)>> = vec![Vec::new(); n];
    for (fi, &taken) in address_taken.iter().enumerate() {
        let fid = FuncId::new(fi);
        if fid == main || needs[fid.index()].is_empty() || taken {
            continue;
        }
        let globals: Vec<GlobalId> = needs[fid.index()].iter().copied().collect();
        let f = m.func_mut(fid);
        let base = f.params.len() as u16;
        for (k, g) in globals.iter().enumerate() {
            f.params.push(Ty::Ptr);
            param_index[fid.index()].push((*g, base + k as u16));
        }
        // Replace gaddr instructions with the new parameter.
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::GlobalAddr(g) = f.inst(iid).op {
                if let Some(&(_, pi)) = param_index[fid.index()].iter().find(|(gg, _)| *gg == g) {
                    f.replace_all_uses(Value::Inst(iid), Value::Arg(pi));
                }
            }
        }
        // Remove the dead gaddr instructions (non-const ones now unused).
        let dead: std::collections::HashSet<_> = f
            .inst_ids_in_layout()
            .into_iter()
            .filter(|(_, i)| match f.inst(*i).op {
                Op::GlobalAddr(g) => param_index[fid.index()].iter().any(|(gg, _)| *gg == g),
                _ => false,
            })
            .map(|(_, i)| i)
            .collect();
        crate::utils::remove_insts(f, &dead);
        rewritten += 1;
    }

    // Fix every call site: pass the callee's needed globals. Inside main,
    // materialize gaddr instructions at the top of the entry block (the
    // thesis: "the very first instructions in the main function … take the
    // address of each global"). Inside other functions, forward from the
    // caller's own params.
    for fi in 0..n {
        let fid = FuncId::new(fi);
        let callee_needs: Vec<(usize, Vec<GlobalId>)> = {
            let f = m.func(fid);
            f.inst_ids_in_layout()
                .into_iter()
                .filter_map(|(_, i)| match &f.inst(i).op {
                    Op::Call(c, _) if !address_taken[c.index()] => {
                        let gl: Vec<GlobalId> = needs[c.index()].iter().copied().collect();
                        if gl.is_empty() {
                            None
                        } else {
                            Some((i.index(), gl))
                        }
                    }
                    _ => None,
                })
                .collect()
        };
        if callee_needs.is_empty() {
            continue;
        }
        // Source of a global's address in this function.
        let mut main_gaddrs: Vec<(GlobalId, Value)> = Vec::new();
        if fid == main {
            // Materialize each needed global once at entry head.
            let all: BTreeSet<GlobalId> =
                callee_needs.iter().flat_map(|(_, gl)| gl.iter().copied()).collect();
            let f = m.func_mut(fid);
            for (k, g) in all.iter().enumerate() {
                let ga = f.create_inst(Op::GlobalAddr(*g), Ty::Ptr);
                f.block_mut(f.entry).insts.insert(k, ga);
                main_gaddrs.push((*g, Value::Inst(ga)));
            }
        }
        let lookup = |g: GlobalId| -> Value {
            if fid == main {
                main_gaddrs.iter().find(|(gg, _)| *gg == g).unwrap().1
            } else {
                let (_, pi) = *param_index[fid.index()].iter().find(|(gg, _)| *gg == g).unwrap();
                Value::Arg(pi)
            }
        };
        let f = m.func_mut(fid);
        for (inst_idx, gl) in callee_needs {
            let vals: Vec<Value> = gl.iter().map(|&g| lookup(g)).collect();
            if let Op::Call(_, args) = &mut f.insts[inst_idx].op {
                args.extend(vals);
            }
        }
    }
    rewritten
}

/// Check the pass postcondition: no non-constant `gaddr` outside `main`.
pub fn check_globals_only_in_main(m: &Module) -> bool {
    let Some(main) = m.find_func("main") else { return true };
    let mut address_taken = vec![false; m.funcs.len()];
    for f in &m.funcs {
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::FuncAddr(t) = &f.inst(iid).op {
                address_taken[t.index()] = true;
            }
        }
    }
    for fid in m.func_ids() {
        if fid == main || address_taken[fid.index()] {
            continue;
        }
        let f = m.func(fid);
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::GlobalAddr(g) = f.inst(iid).op {
                if !m.global(g).is_const {
                    return false;
                }
            }
        }
    }
    true
}

/// `deadargelim`: drop unused parameters of non-main functions, fixing all
/// call sites. Helps after globals2args + constprop made some args dead.
pub fn dead_arg_elim(m: &mut Module) -> usize {
    let Some(main) = m.find_func("main") else { return 0 };
    let mut removed = 0;
    for fid in 0..m.funcs.len() {
        let fid = FuncId::new(fid);
        if fid == main {
            continue;
        }
        let used: BTreeSet<u16> = {
            let f = m.func(fid);
            let mut s = BTreeSet::new();
            for (_, iid) in f.inst_ids_in_layout() {
                f.inst(iid).op.for_each_value(|v| {
                    if let Value::Arg(k) = v {
                        s.insert(k);
                    }
                });
            }
            s
        };
        let nparams = m.func(fid).params.len() as u16;
        let dead: Vec<u16> = (0..nparams).filter(|k| !used.contains(k)).collect();
        if dead.is_empty() {
            continue;
        }
        // Remap arg indices.
        let mut remap: Vec<Option<u16>> = Vec::with_capacity(nparams as usize);
        let mut next = 0u16;
        for k in 0..nparams {
            if dead.contains(&k) {
                remap.push(None);
            } else {
                remap.push(Some(next));
                next += 1;
            }
        }
        {
            let f = m.func_mut(fid);
            let old = std::mem::take(&mut f.params);
            f.params = old
                .into_iter()
                .enumerate()
                .filter(|(k, _)| !dead.contains(&(*k as u16)))
                .map(|(_, t)| t)
                .collect();
            let live: Vec<twill_ir::InstId> =
                f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
            for iid in live {
                f.inst_mut(iid).op.for_each_value_mut(|v| {
                    if let Value::Arg(k) = v {
                        *v = Value::Arg(remap[*k as usize].expect("use of dead arg"));
                    }
                });
            }
        }
        // Fix call sites everywhere (live instructions only).
        for caller in 0..m.funcs.len() {
            let f = &mut m.funcs[caller];
            let live: Vec<twill_ir::InstId> =
                f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
            for iid in live {
                if let Op::Call(c, args) = &mut f.inst_mut(iid).op {
                    if *c == fid {
                        let old = std::mem::take(args);
                        *args = old
                            .into_iter()
                            .enumerate()
                            .filter(|(k, _)| !dead.contains(&(*k as u16)))
                            .map(|(_, v)| v)
                            .collect();
                    }
                }
            }
        }
        removed += dead.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn check(src: &str, input: Vec<i32>) -> String {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, rb, _) = twill_ir::interp::run_main(&m, input.clone(), 10_000_000).unwrap();
        globals_to_args(&mut m);
        crate::utils::assert_valid_ssa(&m);
        assert!(check_globals_only_in_main(&m));
        let (after, ra, _) = twill_ir::interp::run_main(&m, input, 10_000_000).unwrap();
        assert_eq!(before, after);
        assert_eq!(rb, ra);
        print_module(&m)
    }

    #[test]
    fn threads_global_through_call() {
        let out = check(
            r#"
global @counter size=4 []
func @bump() -> void {
bb0:
  %0 = gaddr @counter
  %1 = load i32 %0
  %2 = add i32 %1, 1:i32
  store i32 %2, %0
  ret
}
func @main() -> i32 {
bb0:
  call void @bump()
  call void @bump()
  %0 = gaddr @counter
  %1 = load i32 %0
  out %1
  ret %1
}
"#,
            vec![],
        );
        // bump now takes a ptr param.
        assert!(out.contains("func @bump(ptr)"), "{out}");
    }

    #[test]
    fn nested_calls_propagate_transitively() {
        let out = check(
            r#"
global @state size=4 []
func @inner() -> i32 {
bb0:
  %0 = gaddr @state
  %1 = load i32 %0
  ret %1
}
func @outer() -> i32 {
bb0:
  %0 = call i32 @inner()
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = gaddr @state
  store i32 77:i32, %0
  %1 = call i32 @outer()
  out %1
  ret %1
}
"#,
            vec![],
        );
        // outer doesn't use the global itself but must forward it.
        assert!(out.contains("func @outer(ptr)"), "{out}");
        assert!(out.contains("func @inner(ptr)"), "{out}");
    }

    #[test]
    fn const_globals_left_alone() {
        let out = check(
            r#"
global @table size=8 const [01 00 00 00 02 00 00 00]
func @pick(i32) -> i32 {
bb0:
  %0 = gaddr @table
  %1 = gep %0, %a0, 4
  %2 = load i32 %1
  ret %2
}
func @main() -> i32 {
bb0:
  %0 = call i32 @pick(1:i32)
  out %0
  ret %0
}
"#,
            vec![],
        );
        assert!(out.contains("func @pick(i32)"), "{out}");
        assert!(out.split("func @pick").nth(1).unwrap().contains("gaddr"), "{out}");
    }

    #[test]
    fn dead_arg_elim_removes_and_fixes_sites() {
        let src = r#"
func @f(i32, i32, i32) -> i32 {
bb0:
  %0 = add i32 %a0, %a2
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = call i32 @f(1:i32, 2:i32, 3:i32)
  out %0
  ret %0
}
"#;
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, _, _) = twill_ir::interp::run_main(&m, vec![], 1000).unwrap();
        assert_eq!(dead_arg_elim(&mut m), 1);
        crate::utils::assert_valid_ssa(&m);
        assert_eq!(m.funcs[0].params.len(), 2);
        let (after, _, _) = twill_ir::interp::run_main(&m, vec![], 1000).unwrap();
        assert_eq!(before, after);
    }
}
