//! Shared CFG-editing utilities used by several transform passes.

use std::collections::{HashMap, HashSet};
use twill_ir::{BlockId, Function, InstId, Module, Op, Ty, Value};

/// Blocks reachable from the entry.
pub fn reachable_blocks(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![f.entry];
    seen[f.entry.index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse post-order of reachable blocks.
pub fn rpo(f: &Function) -> Vec<BlockId> {
    let mut state = vec![0u8; f.blocks.len()];
    let mut order = Vec::new();
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = vec![(f.entry, f.successors(f.entry), 0)];
    state[f.entry.index()] = 1;
    while let Some((b, succs, idx)) = stack.last_mut() {
        if *idx < succs.len() {
            let next = succs[*idx];
            *idx += 1;
            if state[next.index()] == 0 {
                state[next.index()] = 1;
                let nsuccs = f.successors(next);
                stack.push((next, nsuccs, 0));
            }
        } else {
            order.push(*b);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Remove blocks not reachable from entry, compacting block ids and fixing
/// phi incoming lists. Returns true if anything was removed.
pub fn remove_unreachable_blocks(f: &mut Function) -> bool {
    let keep = reachable_blocks(f);
    if keep.iter().all(|&k| k) {
        return false;
    }
    // First drop phi entries whose predecessor is being removed.
    let removed: HashSet<BlockId> =
        (0..f.blocks.len()).filter(|&i| !keep[i]).map(BlockId::new).collect();
    for inst in &mut f.insts {
        if let Op::Phi(incoming) = &mut inst.op {
            incoming.retain(|(b, _)| !removed.contains(b));
        }
    }
    compact_blocks(f, &keep);
    true
}

/// Keep only blocks with `keep[i]`, renumbering all references.
/// Every kept block's branches must target kept blocks.
pub fn compact_blocks(f: &mut Function, keep: &[bool]) {
    let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    let mut next = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }
    let mut new_blocks = Vec::with_capacity(next as usize);
    for (i, b) in f.blocks.drain(..).enumerate() {
        if keep[i] {
            new_blocks.push(b);
        }
    }
    f.blocks = new_blocks;
    // Only live (block-resident) instructions are rewritten; dead arena
    // slots may hold stale references and are never consulted.
    let live: Vec<InstId> = f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
    for iid in live {
        let inst = f.inst_mut(iid);
        inst.op.for_each_successor_mut(|b| {
            *b = remap[b.index()].expect("branch to removed block");
        });
        if let Op::Phi(incoming) = &mut inst.op {
            for (b, _) in incoming.iter_mut() {
                *b = remap[b.index()].expect("phi incoming from removed block");
            }
        }
    }
    f.entry = remap[f.entry.index()].expect("entry removed");
}

/// Replace, in block `tgt`'s phis, incoming entries from `old_pred` with
/// `new_pred` (used when an edge is re-routed through a new block).
pub fn retarget_phi_pred(f: &mut Function, tgt: BlockId, old_pred: BlockId, new_pred: BlockId) {
    let insts: Vec<InstId> = f.block(tgt).insts.clone();
    for iid in insts {
        if let Op::Phi(incoming) = &mut f.inst_mut(iid).op {
            for (b, _) in incoming.iter_mut() {
                if *b == old_pred {
                    *b = new_pred;
                }
            }
        } else {
            break;
        }
    }
}

/// Split the CFG edge `from -> to`, inserting a fresh block containing only
/// a branch. Returns the new block. Handles phi retargeting in `to`.
pub fn split_edge(f: &mut Function, from: BlockId, to: BlockId) -> BlockId {
    let mid = f.create_block(format!("split.{}.{}", from.0, to.0));
    // The bridge branch attributes to the edge's source terminator.
    let term = f.block(from).terminator().expect("block without terminator");
    let br = f.create_inst_at(Op::Br(to), Ty::Void, f.loc(term));
    f.block_mut(mid).insts.push(br);
    // Retarget the terminator edge(s) from -> to onto mid.
    f.inst_mut(term).op.for_each_successor_mut(|b| {
        if *b == to {
            *b = mid;
        }
    });
    retarget_phi_pred(f, to, from, mid);
    mid
}

/// Delete the given instructions from their blocks (they remain as dead
/// arena slots; the verifier only checks block-resident instructions).
pub fn remove_insts(f: &mut Function, dead: &HashSet<InstId>) {
    if dead.is_empty() {
        return;
    }
    for b in 0..f.blocks.len() {
        f.blocks[b].insts.retain(|i| !dead.contains(i));
    }
}

/// Map from instruction to the set of instructions that use its result.
pub fn users(f: &Function) -> HashMap<InstId, Vec<InstId>> {
    let mut map: HashMap<InstId, Vec<InstId>> = HashMap::new();
    for (_, iid) in f.inst_ids_in_layout() {
        f.inst(iid).op.for_each_value(|v| {
            if let Value::Inst(d) = v {
                map.entry(d).or_default().push(iid);
            }
        });
    }
    map
}

/// Verify that every use of an instruction result is dominated by its
/// definition (the SSA property the structural verifier can't check).
pub fn verify_dominance(f: &Function) -> Vec<String> {
    let dt = crate::domtree::DomTree::new(f);
    let owner = f.inst_blocks();
    let mut errs = Vec::new();
    // Position of each instruction within its block for same-block checks.
    let mut pos: HashMap<InstId, usize> = HashMap::new();
    for b in f.block_ids() {
        for (i, &iid) in f.block(b).insts.iter().enumerate() {
            pos.insert(iid, i);
        }
    }
    for b in f.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        for &iid in &f.block(b).insts {
            let inst = f.inst(iid);
            if let Op::Phi(incoming) = &inst.op {
                // Each incoming value must dominate the *predecessor edge*.
                for (pred, v) in incoming {
                    if let Value::Inst(d) = v {
                        let db = match owner[d.index()] {
                            Some(x) => x,
                            None => {
                                errs.push(format!("phi {iid} uses dead {d}"));
                                continue;
                            }
                        };
                        if !dt.is_reachable(*pred) {
                            continue;
                        }
                        if !dt.dominates(db, *pred) {
                            errs.push(format!(
                                "phi {iid} in {b}: {d} (def in {db}) does not dominate edge from {pred}"
                            ));
                        }
                    }
                }
                continue;
            }
            inst.op.for_each_value(|v| {
                if let Value::Inst(d) = v {
                    let db = match owner[d.index()] {
                        Some(x) => x,
                        None => {
                            errs.push(format!("{iid} uses dead {d}"));
                            return;
                        }
                    };
                    let ok = if db == b { pos[&d] < pos[&iid] } else { dt.dominates(db, b) };
                    if !ok {
                        errs.push(format!("{iid} in {b}: use of {d} (def in {db}) not dominated"));
                    }
                }
            });
        }
    }
    errs
}

/// Assert full validity: structural + dominance, panicking with a report.
pub fn assert_valid_ssa(m: &Module) {
    twill_ir::verifier::assert_valid(m);
    for f in &m.funcs {
        let errs = verify_dominance(f);
        if !errs.is_empty() {
            panic!("SSA dominance violated in @{}:\n{}", f.name, errs.join("\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let src = r#"
func @f(i1) -> void {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let order = rpo(&m.funcs[0]);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], BlockId(0));
        assert_eq!(*order.last().unwrap(), BlockId(3));
    }

    #[test]
    fn removes_unreachable_and_fixes_phis() {
        let src = r#"
func @f() -> i32 {
bb0:
  br bb2
bb1:
  br bb2
bb2:
  %0 = phi i32 [bb0: 1:i32], [bb1: 2:i32]
  ret %0
}
"#;
        let mut m = parse_module(src).unwrap();
        let f = &mut m.funcs[0];
        assert!(remove_unreachable_blocks(f));
        assert_eq!(f.blocks.len(), 2);
        // Phi entry from dead bb1 dropped; block ids compacted.
        let phi = f.block(BlockId(1)).insts[0];
        match &f.inst(phi).op {
            Op::Phi(inc) => {
                assert_eq!(inc.len(), 1);
                assert_eq!(inc[0].0, BlockId(0));
            }
            _ => panic!(),
        }
        twill_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn split_edge_keeps_phi_semantics() {
        let src = r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb2
bb2:
  %0 = phi i32 [bb0: 1:i32], [bb1: 2:i32]
  ret %0
}
"#;
        let mut m = parse_module(src).unwrap();
        let f = &mut m.funcs[0];
        let mid = split_edge(f, BlockId(0), BlockId(2));
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), mid]);
        assert_eq!(f.successors(mid), vec![BlockId(2)]);
        let phi = f.block(BlockId(2)).insts[0];
        match &f.inst(phi).op {
            Op::Phi(inc) => {
                assert!(inc.iter().any(|(b, _)| *b == mid));
                assert!(!inc.iter().any(|(b, _)| *b == BlockId(0)));
            }
            _ => panic!(),
        }
        twill_ir::verifier::assert_valid(&m);
        assert!(verify_dominance(&m.funcs[0]).is_empty());
    }

    #[test]
    fn dominance_verifier_catches_bad_use() {
        // %0 defined in bb1 but used in bb2 which is not dominated by bb1.
        let src = r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  %0 = add i32 1:i32, 2:i32
  br bb3
bb2:
  %1 = add i32 %0, 1:i32
  br bb3
bb3:
  ret %1
}
"#;
        let m = parse_module(src).unwrap();
        let errs = verify_dominance(&m.funcs[0]);
        assert!(!errs.is_empty());
    }

    #[test]
    fn users_map() {
        let src = "func @f() -> i32 {\nbb0:\n  %0 = add i32 1:i32, 2:i32\n  %1 = add i32 %0, %0\n  ret %1\n}\n";
        let m = parse_module(src).unwrap();
        let u = users(&m.funcs[0]);
        assert_eq!(u[&InstId(0)].len(), 2); // used twice by %1
        assert_eq!(u[&InstId(1)].len(), 1); // used by ret
    }
}
