//! Natural-loop analysis (back edges via dominance, nesting forest).
//!
//! Provides the loop structure queries the DSWP pass needs for its
//! enqueue/dequeue loop-matching cases (thesis Fig 5.3): innermost loop of a
//! block, loop preheaders, exit blocks, and the lowest loop containing two
//! given blocks.

use crate::domtree::DomTree;
use std::collections::HashSet;
use twill_ir::{BlockId, Function};

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    pub header: BlockId,
    /// All blocks in the loop body (header included).
    pub blocks: HashSet<BlockId>,
    /// Enclosing loop, if any (index into `LoopInfo::loops`).
    pub parent: Option<usize>,
    pub children: Vec<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
}

/// Loop forest for one function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    pub loops: Vec<Loop>,
    /// Innermost loop of each block (None = not in a loop).
    pub block_loop: Vec<Option<usize>>,
}

impl LoopInfo {
    pub fn new(f: &Function, dt: &DomTree) -> LoopInfo {
        let n = f.blocks.len();
        // Find back edges: edge (b -> h) where h dominates b.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in f.block_ids() {
            if !dt.is_reachable(b) {
                continue;
            }
            for s in f.successors(b) {
                if dt.dominates(s, b) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((s, vec![b])),
                    }
                }
            }
        }

        // Collect loop bodies: reverse reachability from latches to header.
        let preds = f.predecessors();
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in headers {
            let mut blocks: HashSet<BlockId> = HashSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in &preds[b.index()] {
                        if dt.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            loops.push(Loop {
                header,
                blocks,
                parent: None,
                children: Vec::new(),
                depth: 0,
                latches,
            });
        }

        // Nesting: sort by size ascending; parent = smallest strictly larger
        // loop containing the header.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        for oi in 0..order.len() {
            let i = order[oi];
            for &j in &order[oi + 1..] {
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.contains(&loops[i].header)
                {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                loops[p].children.push(i);
            }
        }
        // Depth: process outermost (largest) first so parents are set.
        let mut by_size_desc = order.clone();
        by_size_desc.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &by_size_desc {
            loops[i].depth = match loops[i].parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        // Innermost loop per block = smallest loop containing it.
        let mut block_loop: Vec<Option<usize>> = vec![None; n];
        for &i in &order {
            for b in &loops[i].blocks {
                if block_loop[b.index()].is_none() {
                    block_loop[b.index()] = Some(i);
                }
            }
        }

        LoopInfo { loops, block_loop }
    }

    /// Innermost loop containing `b`.
    pub fn loop_of(&self, b: BlockId) -> Option<usize> {
        self.block_loop.get(b.index()).copied().flatten()
    }

    pub fn in_loop(&self, l: usize, b: BlockId) -> bool {
        self.loops[l].blocks.contains(&b)
    }

    /// Chain of loops containing `b`, innermost first.
    pub fn loop_chain(&self, b: BlockId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.loop_of(b);
        while let Some(l) = cur {
            out.push(l);
            cur = self.loops[l].parent;
        }
        out
    }

    /// The lowest (innermost) loop containing *both* blocks, if any —
    /// the "lowest loop in the original function that contains both" of
    /// thesis §5.2.1.
    pub fn lowest_common_loop(&self, a: BlockId, b: BlockId) -> Option<usize> {
        let chain_b: HashSet<usize> = self.loop_chain(b).into_iter().collect();
        self.loop_chain(a).into_iter().find(|l| chain_b.contains(l))
    }

    /// Blocks outside the loop that have a predecessor inside (loop exits).
    pub fn exit_blocks(&self, f: &Function, l: usize) -> Vec<BlockId> {
        let lp = &self.loops[l];
        let mut out = Vec::new();
        for &b in &lp.blocks {
            for s in f.successors(b) {
                if !lp.blocks.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out.sort();
        out
    }

    /// Predecessors of the header from outside the loop.
    pub fn entry_preds(&self, f: &Function, l: usize) -> Vec<BlockId> {
        let lp = &self.loops[l];
        let preds = f.predecessors();
        preds[lp.header.index()].iter().copied().filter(|p| !lp.blocks.contains(p)).collect()
    }

    /// The unique preheader: a single outside predecessor of the header
    /// whose only successor is the header. `loop-simplify` establishes this.
    pub fn preheader(&self, f: &Function, l: usize) -> Option<BlockId> {
        let entries = self.entry_preds(f, l);
        if entries.len() == 1 && f.successors(entries[0]).len() == 1 {
            Some(entries[0])
        } else {
            None
        }
    }
}

/// `loop-simplify`: ensure every loop has a dedicated preheader, and that
/// every exit block's predecessors are all inside the loop (dedicated
/// exits). Mirrors LLVM's `-loop-simplify`, which the thesis runs last in
/// its preparation pipeline.
pub fn loop_simplify(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        let mut did = false;
        for l in 0..li.loops.len() {
            // Preheader.
            if li.preheader(f, l).is_none() {
                let entries = li.entry_preds(f, l);
                if entries.is_empty() {
                    continue; // unreachable loop or entry is function entry
                }
                let header = li.loops[l].header;
                // Create one preheader and route all entry edges through it.
                let ph = f.create_block(format!("preheader.{}", header.0));
                // Collect phi rewrites: new phi in ph per header phi.
                reroute_edges_through(f, &entries, header, ph);
                did = true;
                changed = true;
                break; // recompute analyses
            }
            // Dedicated exits.
            for ex in li.exit_blocks(f, l) {
                let preds = f.predecessors();
                let outside: Vec<BlockId> = preds[ex.index()]
                    .iter()
                    .copied()
                    .filter(|p| !li.loops[l].blocks.contains(p))
                    .collect();
                if !outside.is_empty() {
                    let inside: Vec<BlockId> = preds[ex.index()]
                        .iter()
                        .copied()
                        .filter(|p| li.loops[l].blocks.contains(p))
                        .collect();
                    // Route the in-loop edges through a dedicated block.
                    let dex = f.create_block(format!("loopexit.{}.{}", l, ex.0));
                    reroute_edges_through(f, &inside, ex, dex);
                    did = true;
                    changed = true;
                    break;
                }
            }
            if did {
                break;
            }
        }
        if !did {
            break;
        }
    }
    changed
}

/// Route every edge `p -> target` (for p in `preds`) through the (fresh,
/// empty) block `via`, building phis in `via` to merge the incoming values
/// of `target`'s phis.
fn reroute_edges_through(f: &mut Function, preds: &[BlockId], target: BlockId, via: BlockId) {
    use twill_ir::{Op, Ty};
    // For each phi in target, gather entries from `preds` and build a phi in
    // `via`; replace those entries with one entry (via, new_phi).
    let phis: Vec<twill_ir::InstId> =
        f.block(target).insts.iter().copied().take_while(|&i| f.inst(i).op.is_phi()).collect();
    for phi in phis {
        let (mut moved, ty): (Vec<(BlockId, twill_ir::Value)>, Ty) = {
            let inst = f.inst(phi);
            let ty = inst.ty;
            match &inst.op {
                Op::Phi(incoming) => {
                    (incoming.iter().copied().filter(|(b, _)| preds.contains(b)).collect(), ty)
                }
                _ => unreachable!(),
            }
        };
        if moved.is_empty() {
            continue;
        }
        let new_value = if moved.iter().all(|(_, v)| *v == moved[0].1) {
            // All the same value: no phi needed in `via`.
            moved[0].1
        } else {
            // The merge phi inherits the target phi's source line.
            let new_phi = f.create_inst_at(Op::Phi(std::mem::take(&mut moved)), ty, f.loc(phi));
            f.block_mut(via).insts.insert(0, new_phi);
            twill_ir::Value::Inst(new_phi)
        };
        if let Op::Phi(incoming) = &mut f.inst_mut(phi).op {
            incoming.retain(|(b, _)| !preds.contains(b));
            incoming.push((via, new_value));
        }
    }
    // Terminate `via` with a branch to target (append after any phis); it
    // attributes to the first rerouted predecessor's terminator line.
    let br_loc = preds
        .first()
        .and_then(|&p| f.block(p).terminator())
        .map(|t| f.loc(t))
        .unwrap_or(twill_ir::SrcLoc::NONE);
    let br = f.create_inst_at(Op::Br(target), Ty::Void, br_loc);
    f.block_mut(via).insts.push(br);
    // Retarget each pred's terminator edge.
    for &p in preds {
        let term = f.block(p).terminator().expect("pred without terminator");
        f.inst_mut(term).op.for_each_successor_mut(|b| {
            if *b == target {
                *b = via;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utils::assert_valid_ssa;
    use twill_ir::parser::parse_module;

    const NESTED: &str = r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb4: %4]
  %1 = cmp slt %0, %a0
  condbr %1, bb2, bb5
bb2:
  %2 = phi i32 [bb1: 0:i32], [bb3: %3]
  %c = cmp slt %2, 10:i32
  condbr %c, bb3, bb4
bb3:
  %3 = add i32 %2, 1:i32
  br bb2
bb4:
  %4 = add i32 %0, 1:i32
  br bb1
bb5:
  ret %0
}
"#;

    #[test]
    fn finds_nested_loops() {
        let m = parse_module(NESTED).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        assert_eq!(li.loops.len(), 2);
        let outer = li.loops.iter().position(|l| l.header == BlockId(1)).unwrap();
        let inner = li.loops.iter().position(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(li.loops[inner].parent, Some(outer));
        assert_eq!(li.loops[outer].depth, 1);
        assert_eq!(li.loops[inner].depth, 2);
        assert_eq!(li.loop_of(BlockId(3)), Some(inner));
        assert_eq!(li.loop_of(BlockId(4)), Some(outer));
        assert_eq!(li.loop_of(BlockId(0)), None);
        assert_eq!(li.loop_of(BlockId(5)), None);
    }

    #[test]
    fn lowest_common_loop_queries() {
        let m = parse_module(NESTED).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        let outer = li.loops.iter().position(|l| l.header == BlockId(1)).unwrap();
        let inner = li.loops.iter().position(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(li.lowest_common_loop(BlockId(3), BlockId(3)), Some(inner));
        assert_eq!(li.lowest_common_loop(BlockId(3), BlockId(4)), Some(outer));
        assert_eq!(li.lowest_common_loop(BlockId(3), BlockId(0)), None);
    }

    #[test]
    fn exit_blocks_and_preheader() {
        let m = parse_module(NESTED).unwrap();
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        let outer = li.loops.iter().position(|l| l.header == BlockId(1)).unwrap();
        assert_eq!(li.exit_blocks(f, outer), vec![BlockId(5)]);
        assert_eq!(li.preheader(f, outer), Some(BlockId(0)));
    }

    #[test]
    fn loop_simplify_creates_preheader() {
        // Loop header with two outside predecessors: no preheader.
        let src = r#"
func @f(i1) -> void {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %0 = phi i32 [bb1: 1:i32], [bb2: 2:i32], [bb3: %1]
  %1 = add i32 %0, 1:i32
  %c = cmp slt %1, 10:i32
  condbr %c, bb3, bb4
bb4:
  ret
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(loop_simplify(&mut m.funcs[0]));
        assert_valid_ssa(&m);
        let f = &m.funcs[0];
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        let l = li.loops.iter().position(|l| l.header == BlockId(3)).unwrap();
        let ph = li.preheader(f, l);
        assert!(ph.is_some(), "preheader should exist after loop-simplify");
        // Loop behavior preserved: phi in header now has two entries
        // (preheader + latch).
        let phi = f.block(BlockId(3)).insts[0];
        match &f.inst(phi).op {
            twill_ir::Op::Phi(inc) => assert_eq!(inc.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn loop_simplify_idempotent_on_simple_loop() {
        let mut m = parse_module(NESTED).unwrap();
        let changed_first = loop_simplify(&mut m.funcs[0]);
        let before = twill_ir::printer::print_module(&m);
        let changed_second = loop_simplify(&mut m.funcs[0]);
        let after = twill_ir::printer::print_module(&m);
        let _ = changed_first;
        assert!(!changed_second);
        assert_eq!(before, after);
        assert_valid_ssa(&m);
    }
}
