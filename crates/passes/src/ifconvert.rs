//! If-conversion: speculate small, side-effect-free branch diamonds into
//! `select` instructions (the branch-collapsing LegUp's ILP scheduling
//! relies on; LLVM's simplifycfg does the same hoisting).
//!
//! Patterns handled (M = merge block with phis):
//! * diamond:  B → T, F;  T → M;  F → M   (T, F pure, small)
//! * triangle: B → T, M;  T → M           (T pure, small)
//!
//! The speculated instructions are hoisted into B, each phi in M becomes a
//! `select cond, v_true, v_false`, and B branches straight to M.

use std::collections::HashSet;
use twill_ir::{BlockId, Function, InstId, Op, Ty, Value};

/// Maximum instructions speculated per arm.
pub const MAX_SPECULATED: usize = 24;

pub fn ifconvert(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut did = false;
        'outer: for b in 0..f.blocks.len() {
            let b = BlockId::new(b);
            let Some(term) = f.block(b).terminator() else { continue };
            let Op::CondBr(cond, t, e) = f.inst(term).op else { continue };
            if t == e {
                continue;
            }
            // Identify the shape.
            let (arm_t, arm_f, merge) = match (diamond_arm(f, b, t), diamond_arm(f, b, e)) {
                // Full diamond: both arms are pure pass-through blocks with
                // the same successor.
                (Some((mt, _)), Some((mf, _))) if mt == mf && t != mf && e != mt => {
                    (Some(t), Some(e), mt)
                }
                _ => {
                    // Triangle: one arm falls straight to the other target.
                    if let Some((mt, _)) = diamond_arm(f, b, t) {
                        if mt == e {
                            (Some(t), None, e)
                        } else {
                            continue;
                        }
                    } else if let Some((mf, _)) = diamond_arm(f, b, e) {
                        if mf == t {
                            (None, Some(e), t)
                        } else {
                            continue;
                        }
                    } else {
                        continue;
                    }
                }
            };
            // The merge must not have other predecessors (phis stay simple)
            // and the arms must have exactly one predecessor (b).
            let preds = f.predecessors();
            let mut expected: Vec<BlockId> = vec![b];
            if let Some(a) = arm_t {
                expected.push(a);
                if preds[a.index()].len() != 1 {
                    continue;
                }
            }
            if let Some(a) = arm_f {
                expected.push(a);
                if preds[a.index()].len() != 1 {
                    continue;
                }
            }
            let mut mp: Vec<BlockId> = preds[merge.index()].clone();
            mp.sort();
            let _ = &expected;
            // For a full diamond b is not a pred of merge; for a triangle
            // it is.
            let mut exp_sorted = match (arm_t, arm_f) {
                (Some(at), Some(af)) => vec![at, af],
                (Some(at), None) => vec![b, at],
                (None, Some(af)) => vec![b, af],
                (None, None) => continue,
            };
            exp_sorted.sort();
            if mp != exp_sorted {
                continue;
            }

            // Hoist arms into b (before the terminator).
            let term_pos = f.block(b).insts.len() - 1;
            let mut insert_at = term_pos;
            for arm in [arm_t, arm_f].into_iter().flatten() {
                let moved: Vec<InstId> = f.block(arm).insts.clone();
                // last is the Br; move everything before it.
                for &iid in &moved[..moved.len() - 1] {
                    f.block_mut(b).insts.insert(insert_at, iid);
                    insert_at += 1;
                }
                let keep_br = *moved.last().unwrap();
                f.block_mut(arm).insts = vec![keep_br];
            }

            // Convert merge phis to selects placed before the terminator.
            let phis: Vec<InstId> = f
                .block(merge)
                .insts
                .iter()
                .copied()
                .take_while(|&i| f.inst(i).op.is_phi())
                .collect();
            for phi in phis {
                let (vt, vf, ty) = {
                    let inst = f.inst(phi);
                    let Op::Phi(incoming) = &inst.op else { unreachable!() };
                    let from = |blk: BlockId| {
                        incoming
                            .iter()
                            .find(|(p, _)| *p == blk)
                            .map(|(_, v)| *v)
                            .expect("phi missing incoming")
                    };
                    let vt = from(arm_t.unwrap_or(b));
                    let vf = from(arm_f.unwrap_or(b));
                    (vt, vf, inst.ty)
                };
                // The select inherits the merged phi's source line.
                let sel = f.create_inst_at(Op::Select(cond, vt, vf), ty, f.loc(phi));
                f.block_mut(b).insts.insert(insert_at, sel);
                insert_at += 1;
                // Phi becomes dead; replace its uses.
                f.replace_all_uses(Value::Inst(phi), Value::Inst(sel));
                let pos = f.block(merge).insts.iter().position(|&x| x == phi).unwrap();
                f.block_mut(merge).insts.remove(pos);
            }

            // Rewrite b's terminator to jump straight to merge; arms become
            // unreachable.
            f.inst_mut(term).op = Op::Br(merge);
            did = true;
            changed = true;
            break 'outer;
        }
        if !did {
            break;
        }
        crate::utils::remove_unreachable_blocks(f);
    }
    changed
}

/// If `arm` is a pure pass-through block (only speculatable instructions,
/// ends in an unconditional branch), return (successor, inst count).
fn diamond_arm(f: &Function, _from: BlockId, arm: BlockId) -> Option<(BlockId, usize)> {
    let blk = f.block(arm);
    let term = blk.terminator()?;
    let Op::Br(succ) = f.inst(term).op else { return None };
    let body = &blk.insts[..blk.insts.len() - 1];
    if body.len() > MAX_SPECULATED {
        return None;
    }
    let mut seen: HashSet<InstId> = HashSet::new();
    for &iid in body {
        let inst = f.inst(iid);
        if inst.op.is_phi() || inst.op.has_side_effect() || inst.op.is_terminator() {
            return None;
        }
        // Loads are not speculated (could fault / order against stores).
        if matches!(inst.op, Op::Load(_) | Op::Call(..) | Op::Intrin(..) | Op::Alloca(_)) {
            return None;
        }
        if inst.ty == Ty::Void {
            return None;
        }
        seen.insert(iid);
    }
    Some((succ, body.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn check(src: &str, input: Vec<i32>) -> String {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, _, _) = twill_ir::interp::run_main(&m, input.clone(), 1_000_000).unwrap();
        for func in &mut m.funcs {
            ifconvert(func);
        }
        crate::utils::assert_valid_ssa(&m);
        let (after, _, _) = twill_ir::interp::run_main(&m, input, 1_000_000).unwrap();
        assert_eq!(before, after);
        print_module(&m)
    }

    #[test]
    fn converts_diamond_to_select() {
        let out = check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %c = cmp sgt %0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %1 = mul i32 %0, 2:i32
  br bb3
bb2:
  %2 = sub i32 0:i32, %0
  br bb3
bb3:
  %3 = phi i32 [bb1: %1], [bb2: %2]
  out %3
  ret %3
}
"#,
            vec![5],
        );
        assert!(out.contains("select"), "{out}");
        assert!(!out.contains("condbr"), "{out}");
    }

    #[test]
    fn converts_triangle() {
        let out = check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %c = cmp sgt %0, 100:i32
  condbr %c, bb1, bb2
bb1:
  %1 = add i32 %0, -100:i32
  br bb2
bb2:
  %2 = phi i32 [bb0: %0], [bb1: %1]
  out %2
  ret %2
}
"#,
            vec![150],
        );
        assert!(out.contains("select"), "{out}");
    }

    #[test]
    fn skips_side_effecting_arms() {
        let out = check(
            r#"
global @g size=4 []
func @main() -> i32 {
bb0:
  %0 = in
  %p = gaddr @g
  %c = cmp sgt %0, 0:i32
  condbr %c, bb1, bb2
bb1:
  store i32 1:i32, %p
  br bb3
bb2:
  br bb3
bb3:
  %1 = load i32 %p
  out %1
  ret %1
}
"#,
            vec![5],
        );
        assert!(out.contains("condbr"), "store must not be speculated: {out}");
    }

    #[test]
    fn skips_trapping_division() {
        let out = check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %c = cmp ne %0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %1 = sdiv i32 100:i32, %0
  br bb3
bb2:
  br bb3
bb3:
  %2 = phi i32 [bb1: %1], [bb2: -1:i32]
  out %2
  ret %2
}
"#,
            vec![0],
        );
        assert!(out.contains("condbr"), "div guard must survive: {out}");
    }

    #[test]
    fn nested_diamonds_collapse_iteratively() {
        let out = check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %c1 = cmp sgt %0, 0:i32
  condbr %c1, bb1, bb2
bb1:
  %1 = add i32 %0, 1:i32
  br bb3
bb2:
  %2 = add i32 %0, 2:i32
  br bb3
bb3:
  %3 = phi i32 [bb1: %1], [bb2: %2]
  %c2 = cmp slt %3, 10:i32
  condbr %c2, bb4, bb5
bb4:
  %4 = mul i32 %3, 3:i32
  br bb6
bb5:
  br bb6
bb6:
  %5 = phi i32 [bb4: %4], [bb5: %3]
  out %5
  ret %5
}
"#,
            vec![4],
        );
        assert_eq!(out.matches("select").count(), 2, "{out}");
        assert!(!out.contains("condbr"), "{out}");
    }

    #[test]
    fn loop_branches_untouched() {
        let out = check(
            r#"
func @main() -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, 10:i32
  condbr %c, bb1, bb2
bb2:
  out %i
  ret %i
}
"#,
            vec![],
        );
        assert!(out.contains("condbr"), "{out}");
    }
}
