//! Deterministic per-function fan-out.
//!
//! The preparation pipeline and the HLS scheduler both contain
//! embarrassingly-parallel per-function loops: every transform/schedule
//! touches exactly one `Function` and reads nothing mutable outside it.
//! This module provides the one fan-out primitive both use, built on
//! `std::thread::scope` so it needs no external runtime.
//!
//! Determinism is by construction: work is split into contiguous chunks in
//! function-table order, each item's result depends only on that item, and
//! results land at the item's original index. The output is therefore
//! byte-identical to the serial loop regardless of thread count or
//! interleaving — a property the differential test-suite relies on (see
//! `parallel_matches_serial` in the pass and HLS test suites).

/// Threads to use by default: one per available core, capped — the
/// per-function chunks are coarse, so more fan-out than cores only adds
/// spawn overhead.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Run `f` on every element, mutating in place, fanned out over `threads`
/// OS threads. `threads <= 1` (or tiny inputs) runs the plain serial loop.
pub fn par_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for slice in items.chunks_mut(chunk) {
            scope.spawn(|| {
                for item in slice {
                    f(item);
                }
            });
        }
    });
}

/// Map every element through `f`, preserving order, fanned out over
/// `threads` OS threads. `threads <= 1` (or tiny inputs) maps serially.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (chunk_idx, (slice_in, slice_out)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let base = chunk_idx * chunk;
            let f = &f;
            scope.spawn(move || {
                for (off, (item, slot)) in slice_in.iter().zip(slice_out.iter_mut()).enumerate() {
                    *slot = Some(f(base + off, item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("par_map slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_each_matches_serial() {
        let mut serial: Vec<u64> = (0..97).collect();
        let mut parallel = serial.clone();
        let work = |x: &mut u64| {
            for _ in 0..10 {
                *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
        };
        for x in &mut serial {
            work(x);
        }
        par_each_mut(&mut parallel, 5, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_preserves_order_and_indices() {
        let items: Vec<u32> = (0..53).collect();
        let serial: Vec<(usize, u32)> =
            items.iter().enumerate().map(|(i, &x)| (i, x * 3)).collect();
        let parallel = par_map(&items, 4, |i, &x| (i, x * 3));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn degenerate_sizes() {
        let mut empty: Vec<u8> = vec![];
        par_each_mut(&mut empty, 4, |_| unreachable!());
        assert!(par_map(&empty, 4, |_, x: &u8| *x).is_empty());
        let one = vec![7u8];
        assert_eq!(par_map(&one, 4, |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn zst_items_do_not_divide_by_zero() {
        let items = vec![(), (), ()];
        assert_eq!(par_map(&items, 2, |i, _| i), vec![0, 1, 2]);
    }
}
