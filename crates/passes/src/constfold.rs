//! Constant folding and algebraic simplification ("constprop").
//!
//! Folds pure ops with constant operands using the interpreter's own
//! evaluation functions (so folding can never diverge from execution),
//! applies a few algebraic identities, turns constant conditional branches
//! into unconditional ones, and resolves constant switches.

use std::collections::HashSet;
use twill_ir::interp::{eval_bin, eval_cast, eval_cmp};
use twill_ir::{BinOp, Function, InstId, Op, Ty, Value};

/// Run to fixpoint on one function. Returns true if anything changed.
pub fn constfold(f: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let mut changed = false;
        let layout = f.inst_ids_in_layout();
        for (_, iid) in layout {
            if let Some(repl) = fold_inst(f, iid) {
                f.replace_all_uses(Value::Inst(iid), repl);
                changed = true;
            }
        }
        // Drop now-dead foldable instructions.
        let used = live_uses(f);
        let mut dead = HashSet::new();
        for (_, iid) in f.inst_ids_in_layout() {
            let inst = f.inst(iid);
            if !inst.op.is_terminator() && !inst.op.has_side_effect() && !used.contains(&iid) {
                dead.insert(iid);
                changed = true;
            }
        }
        crate::utils::remove_insts(f, &dead);

        // Constant branches.
        for bi in 0..f.blocks.len() {
            let b = twill_ir::BlockId::new(bi);
            let Some(term) = f.block(b).terminator() else { continue };
            let new_op = match &f.inst(term).op {
                Op::CondBr(Value::Imm(v, t), tb, eb) => {
                    Some(Op::Br(if t.mask(*v) & 1 != 0 { *tb } else { *eb }))
                }
                Op::CondBr(_, tb, eb) if tb == eb => Some(Op::Br(*tb)),
                Op::Switch(Value::Imm(v, t), cases, default) => {
                    let x = t.sext(t.mask(*v));
                    let target =
                        cases.iter().find(|(k, _)| *k == x).map(|(_, b)| *b).unwrap_or(*default);
                    Some(Op::Br(target))
                }
                _ => None,
            };
            if let Some(op) = new_op {
                // Removing an edge requires dropping phi entries in the
                // no-longer-targeted block, but only if the edge is truly
                // gone. Collect old/new successor multisets.
                let old_succs = f.inst(term).op.successors();
                let new_succs = op.successors();
                f.inst_mut(term).op = op;
                for s in old_succs {
                    if !new_succs.contains(&s) {
                        remove_phi_entries(f, s, b);
                    }
                }
                changed = true;
            }
        }

        changed_any |= changed;
        if !changed {
            break;
        }
    }
    changed_any
}

fn remove_phi_entries(f: &mut Function, block: twill_ir::BlockId, pred: twill_ir::BlockId) {
    let insts: Vec<InstId> = f.block(block).insts.clone();
    for iid in insts {
        if let Op::Phi(incoming) = &mut f.inst_mut(iid).op {
            if let Some(pos) = incoming.iter().position(|(b, _)| *b == pred) {
                incoming.remove(pos);
            }
        } else {
            break;
        }
    }
}

fn live_uses(f: &Function) -> HashSet<InstId> {
    let mut used = HashSet::new();
    for (_, iid) in f.inst_ids_in_layout() {
        f.inst(iid).op.for_each_value(|v| {
            if let Value::Inst(d) = v {
                used.insert(d);
            }
        });
    }
    used
}

/// If `iid` computes a constant or simplifies to an operand, return the
/// replacement value.
fn fold_inst(f: &Function, iid: InstId) -> Option<Value> {
    let inst = f.inst(iid);
    let ty = inst.ty;
    match &inst.op {
        Op::Bin(b, x, y) => {
            if let (Value::Imm(xv, xt), Value::Imm(yv, yt)) = (x, y) {
                let xv = xt.mask(*xv);
                let yv = yt.mask(*yv);
                if let Ok(r) = eval_bin(*b, ty, xv, yv) {
                    return Some(Value::Imm(ty.sext(r), ty));
                }
                return None;
            }
            // Algebraic identities (careful with traps: division untouched
            // unless divisor constant non-zero).
            let is0 = |v: &Value| matches!(v, Value::Imm(n, t) if t.mask(*n) == 0);
            let is1 = |v: &Value| matches!(v, Value::Imm(n, t) if t.mask(*n) == 1);
            match b {
                BinOp::Add | BinOp::Or | BinOp::Xor if is0(y) => Some(*x),
                BinOp::Add | BinOp::Or | BinOp::Xor if is0(x) => Some(*y),
                BinOp::Sub if is0(y) => Some(*x),
                BinOp::Sub if x == y => Some(Value::Imm(0, ty)),
                BinOp::Mul if is0(x) || is0(y) => Some(Value::Imm(0, ty)),
                BinOp::Mul if is1(y) => Some(*x),
                BinOp::Mul if is1(x) => Some(*y),
                BinOp::And if is0(x) || is0(y) => Some(Value::Imm(0, ty)),
                BinOp::And | BinOp::Or if x == y => Some(*x),
                BinOp::Xor if x == y => Some(Value::Imm(0, ty)),
                BinOp::Shl | BinOp::AShr | BinOp::LShr if is0(y) => Some(*x),
                BinOp::SDiv | BinOp::UDiv if is1(y) => Some(*x),
                _ => None,
            }
        }
        Op::Cmp(c, x, y) => {
            if let (Value::Imm(xv, xt), Value::Imm(yv, _)) = (x, y) {
                let opty = *xt;
                let r = eval_cmp(*c, opty, *xv, *yv);
                return Some(Value::Imm(r, Ty::I1));
            }
            if x == y {
                use twill_ir::CmpOp::*;
                let r = matches!(c, Eq | Sle | Sge | Ule | Uge);
                return Some(Value::Imm(r as i64, Ty::I1));
            }
            None
        }
        Op::Cast(c, v) => {
            if let Value::Imm(x, from) = v {
                let r = eval_cast(*c, *from, ty, *x);
                return Some(Value::Imm(ty.sext(r), ty));
            }
            // No-op casts (same width, zext/sext of i32->i32 etc.).
            let from = f.value_ty(*v);
            if from == ty {
                return Some(*v);
            }
            None
        }
        Op::Select(c, a, b) => match c {
            Value::Imm(v, t) => Some(if t.mask(*v) & 1 != 0 { *a } else { *b }),
            _ if a == b => Some(*a),
            _ => None,
        },
        Op::Gep(base, idx, sz) => {
            // gep base, 0, _ => base ; gep imm, imm, sz => imm
            if let Value::Imm(i, t) = idx {
                if t.mask(*i) == 0 {
                    return Some(*base);
                }
                if let Value::Imm(b, _) = base {
                    let addr = b.wrapping_add(t.sext(t.mask(*i)).wrapping_mul(*sz as i64));
                    return Some(Value::Imm(Ty::Ptr.mask(addr), Ty::Ptr));
                }
            }
            None
        }
        Op::Phi(incoming) => {
            // Phi with all-identical values (ignoring self-references).
            let mut uniq: Option<Value> = None;
            for (_, v) in incoming {
                if *v == Value::Inst(iid) {
                    continue;
                }
                match uniq {
                    None => uniq = Some(*v),
                    Some(u) if u == *v => {}
                    _ => return None,
                }
            }
            uniq
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn fold_src(src: &str) -> String {
        let mut m = parse_module(src).unwrap();
        constfold(&mut m.funcs[0]);
        crate::utils::assert_valid_ssa(&m);
        print_module(&m)
    }

    #[test]
    fn folds_constant_chain() {
        let out = fold_src(
            "func @f() -> i32 {\nbb0:\n  %0 = add i32 2:i32, 3:i32\n  %1 = mul i32 %0, 4:i32\n  ret %1\n}\n",
        );
        assert!(out.contains("ret 20:i32"), "{out}");
        assert!(!out.contains("add"), "{out}");
    }

    #[test]
    fn folds_signed_ops_correctly() {
        let out =
            fold_src("func @f() -> i32 {\nbb0:\n  %0 = sdiv i32 -9:i32, 2:i32\n  ret %0\n}\n");
        assert!(out.contains("ret -4:i32"), "{out}");
    }

    #[test]
    fn preserves_possible_trap() {
        // Division by an unknown value must not be removed even if unused.
        let out =
            fold_src("func @f(i32) -> i32 {\nbb0:\n  %0 = sdiv i32 8:i32, %a0\n  ret 1:i32\n}\n");
        assert!(out.contains("sdiv"), "{out}");
        // But division by zero constant isn't folded (kept, traps at run).
        let out2 =
            fold_src("func @f() -> i32 {\nbb0:\n  %0 = sdiv i32 8:i32, 0:i32\n  ret %0\n}\n");
        assert!(out2.contains("sdiv"), "{out2}");
    }

    #[test]
    fn identities() {
        let out = fold_src(
            "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 0:i32\n  %1 = mul i32 %0, 1:i32\n  %2 = xor i32 %1, %1\n  %3 = add i32 %1, %2\n  ret %3\n}\n",
        );
        assert!(out.contains("ret %a0"), "{out}");
    }

    #[test]
    fn constant_condbr_becomes_br_and_fixes_phis() {
        let out = fold_src(
            r#"func @f() -> i32 {
bb0:
  condbr 1:i1, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %0 = phi i32 [bb1: 10:i32], [bb2: 20:i32]
  ret %0
}
"#,
        );
        assert!(out.contains("br bb1"), "{out}");
        assert!(!out.contains("condbr"), "{out}");
    }

    #[test]
    fn constant_switch_resolves() {
        let out = fold_src(
            r#"func @f() -> i32 {
bb0:
  switch 2:i32, [1: bb1], [2: bb2], default bb3
bb1:
  ret 1:i32
bb2:
  ret 2:i32
bb3:
  ret 0:i32
}
"#,
        );
        assert!(out.contains("br bb2"), "{out}");
    }

    #[test]
    fn cmp_same_operand() {
        let out = fold_src(
            "func @f(i32) -> i32 {\nbb0:\n  %0 = cmp sle %a0, %a0\n  %1 = zext %0 to i32\n  ret %1\n}\n",
        );
        assert!(out.contains("ret 1:i32"), "{out}");
    }

    #[test]
    fn gep_zero_index_folds_to_base() {
        let out = fold_src(
            "global @g size=8 []\nfunc @f() -> i32 {\nbb0:\n  %0 = gaddr @g\n  %1 = gep %0, 0:i32, 4\n  %2 = load i32 %1\n  ret %2\n}\n",
        );
        assert!(!out.contains("gep"), "{out}");
    }

    #[test]
    fn semantics_preserved_under_folding() {
        // Run a program before and after folding; outputs must match.
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = add i32 7:i32, 5:i32
  %1 = shl i32 %0, 2:i32
  %2 = in
  %3 = sub i32 %1, %2
  out %3
  ret %3
}
"#;
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (out_before, _, _) = twill_ir::interp::run_main(&m, vec![8], 10_000).unwrap();
        constfold(&mut m.funcs[0]);
        let (out_after, _, _) = twill_ir::interp::run_main(&m, vec![8], 10_000).unwrap();
        assert_eq!(out_before, out_after);
        assert_eq!(out_after, vec![40]);
    }
}
