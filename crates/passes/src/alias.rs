//! Flow-insensitive points-to alias analysis ("basicaa"-grade).
//!
//! Every pointer value is mapped to a set of *abstract objects*: a specific
//! global, a specific alloca, a pointer argument, or Unknown. Two accesses
//! may alias iff their object sets intersect (Unknown intersects
//! everything). Constant (read-only) globals never conflict with writes —
//! the thesis' "constprop … will identify any constant globals".
//!
//! This is deliberately conservative: it is the information source for the
//! PDG's memory-dependence edges, where a false positive only costs
//! parallelism, never correctness.

use std::collections::{BTreeSet, HashMap};
use twill_ir::{Function, GlobalId, InstId, Op, Value};

/// An abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemObject {
    Global(GlobalId),
    /// The alloca instruction that created the slot.
    Stack(InstId),
    /// The n-th pointer argument of the current function.
    ArgPtr(u16),
    /// Anything (integer-to-pointer, loads of pointers, …).
    Unknown,
}

/// Points-to sets for every instruction producing a pointer-like value.
pub struct AliasInfo {
    points_to: HashMap<InstId, BTreeSet<MemObject>>,
    arg_objects: Vec<BTreeSet<MemObject>>,
}

impl AliasInfo {
    pub fn new(f: &Function) -> AliasInfo {
        let mut points_to: HashMap<InstId, BTreeSet<MemObject>> = HashMap::new();
        let arg_objects: Vec<BTreeSet<MemObject>> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let mut s = BTreeSet::new();
                if *ty == twill_ir::Ty::Ptr {
                    s.insert(MemObject::ArgPtr(i as u16));
                } else {
                    // Integer arg cast to pointer later => unknown.
                    s.insert(MemObject::Unknown);
                }
                s
            })
            .collect();

        // Iterate to fixpoint (phis can form cycles).
        let layout = f.inst_ids_in_layout();
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for &(_, iid) in &layout {
                let inst = f.inst(iid);
                let new: BTreeSet<MemObject> = match &inst.op {
                    Op::Alloca(_) => [MemObject::Stack(iid)].into(),
                    Op::GlobalAddr(g) => [MemObject::Global(*g)].into(),
                    Op::Gep(base, _, _) => value_objects(&points_to, &arg_objects, *base),
                    Op::Cast(_, v) => value_objects(&points_to, &arg_objects, *v),
                    Op::Select(_, a, b) => {
                        let mut s = value_objects(&points_to, &arg_objects, *a);
                        s.extend(value_objects(&points_to, &arg_objects, *b));
                        s
                    }
                    Op::Phi(incoming) => {
                        let mut s = BTreeSet::new();
                        for (_, v) in incoming {
                            s.extend(value_objects(&points_to, &arg_objects, *v));
                        }
                        s
                    }
                    // Pointer arithmetic through add/sub keeps the base set.
                    Op::Bin(twill_ir::BinOp::Add | twill_ir::BinOp::Sub, a, b) => {
                        let mut s = value_objects(&points_to, &arg_objects, *a);
                        s.extend(value_objects(&points_to, &arg_objects, *b));
                        // Adding two constants produces no object; keep as-is.
                        s
                    }
                    // Loads of pointers, call results, function addresses:
                    // unknown (function addresses never alias data, but
                    // treating them as data pointers is merely conservative).
                    Op::Load(_)
                    | Op::Call(..)
                    | Op::CallIndirect(..)
                    | Op::Intrin(..)
                    | Op::FuncAddr(_) => [MemObject::Unknown].into(),
                    _ => continue,
                };
                let entry = points_to.entry(iid).or_default();
                if *entry != new {
                    let merged: BTreeSet<MemObject> = entry.union(&new).copied().collect();
                    if *entry != merged {
                        *entry = merged;
                        changed = true;
                    }
                }
            }
        }
        AliasInfo { points_to, arg_objects }
    }

    /// The abstract objects a pointer value may address.
    pub fn objects_of(&self, v: Value) -> BTreeSet<MemObject> {
        value_objects(&self.points_to, &self.arg_objects, v)
    }

    /// May the two addresses alias?
    ///
    /// Pointer arguments conservatively alias all globals and other pointer
    /// arguments (after the globals-to-arguments pass, callee pointer params
    /// *are* global addresses), but never this frame's own allocas.
    pub fn may_alias(&self, a: Value, b: Value) -> bool {
        let sa = self.objects_of(a);
        let sb = self.objects_of(b);
        for oa in &sa {
            for ob in &sb {
                if objects_compatible(*oa, *ob) {
                    return true;
                }
            }
        }
        false
    }

    /// May a memory access through `addr` conflict with writes done by any
    /// callee (conservatively true unless it's a distinct stack slot that
    /// never escapes — we keep it simple and return true except for
    /// non-escaping allocas).
    pub fn may_conflict_with_calls(&self, f: &Function, addr: Value) -> bool {
        let objs = self.objects_of(addr);
        if objs.contains(&MemObject::Unknown) {
            return true;
        }
        // A non-escaping alloca cannot be touched by a callee.
        objs.iter().any(|o| match o {
            MemObject::Stack(a) => alloca_escapes(f, *a),
            _ => true,
        })
    }
}

/// Whether two abstract objects may denote overlapping storage.
fn objects_compatible(a: MemObject, b: MemObject) -> bool {
    use MemObject::*;
    match (a, b) {
        (Unknown, _) | (_, Unknown) => true,
        (ArgPtr(_), ArgPtr(_)) => true,
        (ArgPtr(_), Global(_)) | (Global(_), ArgPtr(_)) => true,
        (ArgPtr(_), Stack(_)) | (Stack(_), ArgPtr(_)) => false,
        (Global(x), Global(y)) => x == y,
        (Stack(x), Stack(y)) => x == y,
        (Global(_), Stack(_)) | (Stack(_), Global(_)) => false,
    }
}

fn value_objects(
    points_to: &HashMap<InstId, BTreeSet<MemObject>>,
    arg_objects: &[BTreeSet<MemObject>],
    v: Value,
) -> BTreeSet<MemObject> {
    match v {
        Value::Inst(i) => points_to.get(&i).cloned().unwrap_or_default(),
        Value::Arg(n) => arg_objects.get(n as usize).cloned().unwrap_or_else(|| {
            let mut s = BTreeSet::new();
            s.insert(MemObject::Unknown);
            s
        }),
        // A constant address (rare; only via inttoptr-style arithmetic):
        // treat as unknown unless zero.
        Value::Imm(..) => BTreeSet::new(),
    }
}

/// Does the address of this alloca flow anywhere except load/store
/// addresses and geps thereof? (Passed to a call, stored, enqueued, …)
pub fn alloca_escapes(f: &Function, alloca: InstId) -> bool {
    // Worklist over derived pointers.
    let mut derived: Vec<InstId> = vec![alloca];
    let mut seen = std::collections::HashSet::new();
    seen.insert(alloca);
    while let Some(p) = derived.pop() {
        for (_, iid) in f.inst_ids_in_layout() {
            let inst = f.inst(iid);
            let uses_p = {
                let mut found = false;
                inst.op.for_each_value(|v| {
                    if v == Value::Inst(p) {
                        found = true;
                    }
                });
                found
            };
            if !uses_p {
                continue;
            }
            match &inst.op {
                Op::Load(_) => {}
                Op::Store(v, _a) => {
                    // Storing the *pointer itself* escapes it.
                    if *v == Value::Inst(p) {
                        return true;
                    }
                }
                Op::Gep(..) | Op::Cast(..) | Op::Phi(_) | Op::Select(..) => {
                    if seen.insert(iid) {
                        derived.push(iid);
                    }
                }
                Op::Bin(..) | Op::Cmp(..) => {
                    // Address arithmetic/compares don't escape by themselves,
                    // but the derived value might: track adds/subs.
                    if matches!(inst.op, Op::Bin(twill_ir::BinOp::Add | twill_ir::BinOp::Sub, _, _))
                        && seen.insert(iid)
                    {
                        derived.push(iid);
                    }
                }
                // Calls, intrinsics, returns, branches: escapes.
                _ => return true,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::BlockId;

    #[test]
    fn distinct_globals_do_not_alias() {
        let src = r#"
global @a size=4 []
global @b size=4 []
func @f() -> void {
bb0:
  %0 = gaddr @a
  %1 = gaddr @b
  store i32 1:i32, %0
  store i32 2:i32, %1
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let g0 = Value::Inst(f.block(BlockId(0)).insts[0]);
        let g1 = Value::Inst(f.block(BlockId(0)).insts[1]);
        assert!(!aa.may_alias(g0, g1));
        assert!(aa.may_alias(g0, g0));
    }

    #[test]
    fn gep_keeps_base_object() {
        let src = r#"
global @a size=64 []
func @f(i32) -> void {
bb0:
  %0 = gaddr @a
  %1 = gep %0, %a0, 4
  %2 = gep %0, 3:i32, 4
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let p1 = Value::Inst(f.block(BlockId(0)).insts[1]);
        let p2 = Value::Inst(f.block(BlockId(0)).insts[2]);
        // Same base object → may alias (field-insensitive).
        assert!(aa.may_alias(p1, p2));
    }

    #[test]
    fn allocas_are_distinct() {
        let src = r#"
func @f() -> void {
bb0:
  %0 = alloca 8
  %1 = alloca 8
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let a0 = Value::Inst(f.block(BlockId(0)).insts[0]);
        let a1 = Value::Inst(f.block(BlockId(0)).insts[1]);
        assert!(!aa.may_alias(a0, a1));
    }

    #[test]
    fn phi_of_pointers_unions() {
        let src = r#"
global @a size=4 []
global @b size=4 []
func @f(i1) -> void {
bb0:
  %0 = gaddr @a
  %1 = gaddr @b
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %2 = phi ptr [bb1: %0], [bb2: %1]
  store i32 0:i32, %2
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let phi = Value::Inst(f.block(BlockId(3)).insts[0]);
        let g0 = Value::Inst(f.block(BlockId(0)).insts[0]);
        let g1 = Value::Inst(f.block(BlockId(0)).insts[1]);
        assert!(aa.may_alias(phi, g0));
        assert!(aa.may_alias(phi, g1));
    }

    #[test]
    fn loaded_pointer_is_unknown() {
        let src = r#"
global @a size=4 []
func @f() -> void {
bb0:
  %0 = gaddr @a
  %1 = load ptr %0
  store i32 0:i32, %1
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let loaded = Value::Inst(f.block(BlockId(0)).insts[1]);
        let g0 = Value::Inst(f.block(BlockId(0)).insts[0]);
        assert!(aa.may_alias(loaded, g0)); // unknown aliases everything
    }

    #[test]
    fn escape_analysis() {
        let src = r#"
func @g(ptr) -> void {
bb0:
  ret
}
func @f() -> void {
bb0:
  %0 = alloca 8
  %1 = alloca 8
  store i32 1:i32, %0
  call void @g(%1)
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[1];
        let a0 = f.block(BlockId(0)).insts[0];
        let a1 = f.block(BlockId(0)).insts[1];
        assert!(!alloca_escapes(f, a0));
        assert!(alloca_escapes(f, a1));
    }

    #[test]
    fn pointer_arg_vs_global_may_alias() {
        let src = r#"
global @a size=4 []
func @f(ptr) -> void {
bb0:
  %0 = gaddr @a
  store i32 1:i32, %a0
  store i32 2:i32, %0
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let g = Value::Inst(f.block(BlockId(0)).insts[0]);
        // After globals-to-args, pointer params may be global addresses:
        // must conservatively alias.
        assert!(aa.may_alias(Value::Arg(0), g));
    }

    #[test]
    fn pointer_arg_does_not_alias_local_alloca() {
        let src = r#"
func @f(ptr) -> void {
bb0:
  %0 = alloca 8
  store i32 1:i32, %a0
  store i32 2:i32, %0
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let aa = AliasInfo::new(f);
        let a = Value::Inst(f.block(BlockId(0)).insts[0]);
        assert!(!aa.may_alias(Value::Arg(0), a));
    }
}
