//! The standard Twill preparation pipeline (thesis §5.1–5.2):
//!
//! 1. shaping: `mem2reg`, `mergereturn`, `lowerswitch`, `inline`,
//!    `simplifycfg`, `gvn`, `adce`, `loop-simplify`
//! 2. custom globals-to-arguments pass
//! 3. cleanups: `deadargelim`, `constprop`
//!
//! The exact LLVM order from the thesis is preserved where our passes have
//! a counterpart; `indvars` and `argpromotion` have no behavioural effect on
//! our IR (no canonical IV rewriting needed; args are already scalars) and
//! are documented as intentionally absent.

use twill_ir::Module;

#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    pub inline: crate::inline::InlineOptions,
    /// Verify SSA validity between stages (on in tests, off in benches).
    pub verify_between: bool,
}

/// Run the full preparation pipeline in place.
///
/// Per-function stages fan out over [`crate::par::default_threads`] worker
/// threads; module-level stages (inlining, global passes, DCE) stay serial
/// barriers between them. The result is byte-identical to the serial
/// pipeline — see [`run_standard_pipeline_threads`].
pub fn run_standard_pipeline(m: &mut Module, opts: &PipelineOptions) {
    run_standard_pipeline_threads(m, opts, crate::par::default_threads());
}

/// [`run_standard_pipeline`] with an explicit fan-out width. `threads == 1`
/// is the reference serial pipeline; any other width must produce
/// byte-identical IR (each per-function pass reads and writes exactly one
/// function, so scheduling cannot change the result).
pub fn run_standard_pipeline_threads(m: &mut Module, opts: &PipelineOptions, threads: usize) {
    let verify = |m: &Module, stage: &str| {
        if opts.verify_between {
            let errs = twill_ir::verifier::verify_module(m);
            if !errs.is_empty() {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                panic!("pipeline stage '{stage}' broke the IR:\n{}", msgs.join("\n"));
            }
            for f in &m.funcs {
                let errs = crate::utils::verify_dominance(f);
                if !errs.is_empty() {
                    panic!(
                        "pipeline stage '{stage}' broke dominance in @{}:\n{}",
                        f.name,
                        errs.join("\n")
                    );
                }
            }
        }
    };

    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::mem2reg::mem2reg(f);
    });
    verify(m, "mem2reg");

    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::mergereturn::mergereturn(f);
    });
    verify(m, "mergereturn");

    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::lowerswitch::lowerswitch(f);
    });
    verify(m, "lowerswitch");

    crate::inline::inline_module(m, opts.inline);
    verify(m, "inline");
    crate::dce::remove_dead_functions(m);
    verify(m, "remove-dead-functions");

    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::simplifycfg::simplifycfg(f);
        crate::ifconvert::ifconvert(f);
        crate::simplifycfg::simplifycfg(f);
        crate::constfold::constfold(f);
        crate::gvn::gvn(f);
    });
    verify(m, "simplifycfg+ifconvert+constfold+gvn");

    crate::dce::dce_module(m);
    verify(m, "adce");

    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::loops::loop_simplify(f);
    });
    verify(m, "loop-simplify");

    // Custom pass: globals to arguments (thesis §5.2 first custom pass).
    crate::globals2args::globals_to_args(m);
    verify(m, "globals2args");

    // Cleanups the thesis runs after the globals pass.
    crate::globals2args::dead_arg_elim(m);
    verify(m, "deadargelim");
    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::constfold::constfold(f);
        crate::simplifycfg::simplifycfg(f);
    });
    crate::dce::dce_module(m);
    verify(m, "final-cleanup");
    // mergereturn may have been undone by simplifycfg merging; re-establish
    // the unique-return invariant the DSWP extractor wants.
    crate::par::par_each_mut(&mut m.funcs, threads, |f| {
        crate::mergereturn::mergereturn(f);
        crate::loops::loop_simplify(f);
    });
    verify(m, "re-normalize");
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    /// An integration-style program exercising most constructs.
    const PROGRAM: &str = r#"
global @lut size=16 const [01 00 00 00 03 00 00 00 06 00 00 00 0a 00 00 00]
global @acc size=4 []
func @step(i32) -> i32 {
bb0:
  %0 = gaddr @lut
  %1 = and i32 %a0, 3:i32
  %2 = gep %0, %1, 4
  %3 = load i32 %2
  %4 = gaddr @acc
  %5 = load i32 %4
  %6 = add i32 %5, %3
  store i32 %6, %4
  ret %6
}
func @main() -> i32 {
bb0:
  %i = alloca 4
  store i32 0:i32, %i
  br bb1
bb1:
  %0 = load i32 %i
  %1 = cmp slt %0, 8:i32
  condbr %1, bb2, bb3
bb2:
  %2 = call i32 @step(%0)
  %3 = add i32 %0, 1:i32
  store i32 %3, %i
  br bb1
bb3:
  %4 = gaddr @acc
  %5 = load i32 %4
  out %5
  ret %5
}
"#;

    #[test]
    fn pipeline_preserves_semantics() {
        let mut m = parse_module(PROGRAM).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, rb, steps_before) =
            twill_ir::interp::run_main(&m, vec![], 10_000_000).unwrap();
        run_standard_pipeline(
            &mut m,
            &PipelineOptions { verify_between: true, ..Default::default() },
        );
        crate::utils::assert_valid_ssa(&m);
        let (after, ra, steps_after) = twill_ir::interp::run_main(&m, vec![], 10_000_000).unwrap();
        assert_eq!(before, after);
        assert_eq!(rb, ra);
        // The pipeline should not make the program bigger to execute.
        assert!(steps_after <= steps_before * 2, "{steps_before} -> {steps_after}");
    }

    #[test]
    fn pipeline_promotes_and_inlines() {
        let mut m = parse_module(PROGRAM).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        run_standard_pipeline(
            &mut m,
            &PipelineOptions { verify_between: true, ..Default::default() },
        );
        let text = twill_ir::printer::print_module(&m);
        assert!(!text.contains("alloca"), "{text}");
        // @step is small: inlined, then removed as dead.
        assert!(m.find_func("step").is_none(), "{text}");
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let mut seed = parse_module(PROGRAM).unwrap();
        twill_ir::layout::assign_global_addrs(&mut seed);
        let mut serial = seed.clone();
        run_standard_pipeline_threads(&mut serial, &Default::default(), 1);
        let reference = twill_ir::printer::print_module(&serial);
        for threads in [2usize, 3, 8] {
            let mut m = seed.clone();
            run_standard_pipeline_threads(&mut m, &Default::default(), threads);
            assert_eq!(
                twill_ir::printer::print_module(&m),
                reference,
                "pipeline output diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn pipeline_idempotent_semantically() {
        let mut m = parse_module(PROGRAM).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        run_standard_pipeline(&mut m, &Default::default());
        let (out1, _, _) = twill_ir::interp::run_main(&m, vec![], 10_000_000).unwrap();
        run_standard_pipeline(&mut m, &Default::default());
        let (out2, _, _) = twill_ir::interp::run_main(&m, vec![], 10_000_000).unwrap();
        assert_eq!(out1, out2);
    }
}
