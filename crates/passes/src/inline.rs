//! Function inlining ("inline" / "always-inline").
//!
//! Inlines small callees and single-call-site callees, the same policy mix
//! the thesis gets from LLVM's `-inline -always-inline` pair. Callees are
//! normalized with `mergereturn` first so each has a unique `ret`.
//!
//! Cloned allocas are hoisted to the caller's entry block (the IR requires
//! allocas there); because allocas zero their slot when *executed*, explicit
//! zero-stores are inserted at the original position so that re-entering the
//! inlined body in a loop still observes fresh zeroed locals.

use crate::callgraph::CallGraph;
use std::collections::HashMap;
use twill_ir::{BlockId, FuncId, Function, InstId, Module, Op, Ty, Value};

#[derive(Clone, Copy, Debug)]
pub struct InlineOptions {
    /// Inline any callee with at most this many live instructions.
    pub small_threshold: usize,
    /// Inline single-call-site callees up to this size.
    pub single_site_threshold: usize,
    /// Skip callees whose total alloca bytes exceed this (zero-store cost).
    pub max_alloca_bytes: u32,
    /// Global budget of inline operations (explosion guard).
    pub max_inlines: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            small_threshold: 40,
            single_site_threshold: 250,
            max_alloca_bytes: 64,
            max_inlines: 200,
        }
    }
}

/// Run inlining over the module. Returns the number of call sites inlined.
pub fn inline_module(m: &mut Module, opts: InlineOptions) -> usize {
    let mut total = 0usize;
    loop {
        let cg = CallGraph::new(m);
        if cg.is_recursive() {
            return total; // never inline recursive modules
        }
        let mut did = false;
        // Walk callers in reverse-topo order so leaf bodies are final before
        // being cloned upward.
        let order: Vec<FuncId> = cg.reverse_topo.clone();
        'outer: for caller in order {
            // Find an inlinable call site in this caller.
            let sites: Vec<(BlockId, InstId, FuncId)> = {
                let f = m.func(caller);
                f.inst_ids_in_layout()
                    .into_iter()
                    .filter_map(|(b, i)| match &f.inst(i).op {
                        Op::Call(callee, _) => Some((b, i, *callee)),
                        _ => None,
                    })
                    .collect()
            };
            for (block, call, callee) in sites {
                if !should_inline(m, &cg, callee, &opts) {
                    continue;
                }
                if total >= opts.max_inlines {
                    return total;
                }
                // Normalize callee: single return.
                crate::mergereturn::mergereturn(&mut m.funcs[callee.index()]);
                let callee_clone = m.func(callee).clone();
                inline_site(m.func_mut(caller), block, call, &callee_clone);
                total += 1;
                did = true;
                break 'outer; // re-derive analyses
            }
        }
        if !did {
            break;
        }
    }
    total
}

fn should_inline(m: &Module, cg: &CallGraph, callee: FuncId, opts: &InlineOptions) -> bool {
    let f = m.func(callee);
    if f.name == "main" {
        return false;
    }
    let size = f.live_inst_count();
    let alloca_bytes: u32 = f
        .inst_ids_in_layout()
        .iter()
        .filter_map(|(_, i)| match f.inst(*i).op {
            Op::Alloca(s) => Some(s),
            _ => None,
        })
        .sum();
    if alloca_bytes > opts.max_alloca_bytes {
        return false;
    }
    // A callee that never returns (infinite loop) cannot be spliced.
    let has_ret = f.inst_ids_in_layout().iter().any(|(_, i)| matches!(f.inst(*i).op, Op::Ret(_)));
    if !has_ret {
        return false;
    }
    if size <= opts.small_threshold {
        return true;
    }
    let sites = cg.call_site_count(m, callee);
    sites == 1 && size <= opts.single_site_threshold
}

/// Inline `callee` (already mergereturn-normalized) at instruction `call`
/// inside `block` of `caller`.
fn inline_site(caller: &mut Function, block: BlockId, call: InstId, callee: &Function) {
    let args: Vec<Value> = match &caller.inst(call).op {
        Op::Call(_, a) => a.clone(),
        _ => panic!("inline target is not a call"),
    };

    // 1. Split the caller block at the call site.
    let call_pos = caller.block(block).insts.iter().position(|&i| i == call).unwrap();
    let tail_insts: Vec<InstId> = caller.block(block).insts[call_pos + 1..].to_vec();
    let tail = caller.create_block(format!("{}.tail", caller.block(block).name));
    caller.block_mut(block).insts.truncate(call_pos);
    caller.block_mut(tail).insts = tail_insts;
    // Successor phis of the original terminator now come from `tail`.
    for s in caller.successors(tail) {
        crate::utils::retarget_phi_pred(caller, s, block, tail);
    }

    // 2. Clone callee bodies with remapping.
    let block_off = caller.blocks.len();
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for (bi, cb) in callee.blocks.iter().enumerate() {
        let nb = caller.create_block(format!("inl.{}.{}", callee.name, bi));
        debug_assert_eq!(nb.index(), block_off + bi);
        let _ = cb;
    }
    // Create instruction clones, carrying each callee line over.
    for (_, iid) in callee.inst_ids_in_layout() {
        let data = callee.inst(iid);
        let nid = caller.create_inst_at(data.op.clone(), data.ty, callee.loc(iid));
        inst_map.insert(iid, nid);
    }
    // Remap operands / blocks, fill block inst lists.
    let remap_value = |v: Value, inst_map: &HashMap<InstId, InstId>| -> Value {
        match v {
            Value::Inst(i) => Value::Inst(*inst_map.get(&i).expect("use of dead callee inst")),
            Value::Arg(n) => args[n as usize],
            Value::Imm(..) => v,
        }
    };
    let mut ret_info: Option<(BlockId, Option<Value>)> = None;
    for (bi, cb) in callee.blocks.iter().enumerate() {
        let nb = BlockId::new(block_off + bi);
        for &iid in &cb.insts {
            let nid = inst_map[&iid];
            let mut op = caller.inst(nid).op.clone();
            op.for_each_value_mut(|v| *v = remap_value(*v, &inst_map));
            op.for_each_successor_mut(|b| *b = BlockId::new(block_off + b.index()));
            if let Op::Phi(incoming) = &mut op {
                for (b, _) in incoming.iter_mut() {
                    *b = BlockId::new(block_off + b.index());
                }
            }
            if let Op::Ret(v) = &op {
                debug_assert!(ret_info.is_none(), "callee not mergereturn-normalized");
                ret_info = Some((nb, *v));
                op = Op::Br(tail);
            }
            caller.inst_mut(nid).op = op;
            caller.block_mut(nb).insts.push(nid);
        }
    }

    // 3. Hoist cloned allocas into the caller entry with zero-reinit at the
    // original position.
    let cloned_entry = BlockId::new(block_off + callee.entry.index());
    hoist_allocas(caller, cloned_entry);

    // 4. Wire control flow: block -> cloned entry; cloned ret -> tail.
    // The splice branch attributes to the call site's line.
    let br = caller.create_inst_at(Op::Br(cloned_entry), Ty::Void, caller.loc(call));
    caller.block_mut(block).insts.push(br);
    let (_, ret_val) = ret_info.expect("callee has no return");
    if let Some(rv) = ret_val {
        caller.replace_all_uses(Value::Inst(call), rv);
    }
    // Remove the call from the arena use (it's already out of any block).
}

/// Move allocas found in `from_block` (a cloned callee entry) to the caller
/// entry, leaving zero-stores behind.
fn hoist_allocas(caller: &mut Function, from_block: BlockId) {
    if from_block == caller.entry {
        return;
    }
    let allocas: Vec<(InstId, u32)> = caller
        .block(from_block)
        .insts
        .iter()
        .filter_map(|&i| match caller.inst(i).op {
            Op::Alloca(s) => Some((i, s)),
            _ => None,
        })
        .collect();
    if allocas.is_empty() {
        return;
    }
    // Remove from the cloned block; insert zero-stores in their place.
    let mut zero_stores: Vec<(usize, Vec<InstId>)> = Vec::new();
    for &(a, size) in &allocas {
        let pos = caller.block(from_block).insts.iter().position(|&i| i == a).unwrap();
        let a_loc = caller.loc(a);
        let words = size.div_ceil(4);
        let mut stores = Vec::new();
        for w in 0..words {
            let addr = if w == 0 {
                Value::Inst(a)
            } else {
                let gep = caller.create_inst_at(
                    Op::Gep(Value::Inst(a), Value::imm32(w as i64), 4),
                    Ty::Ptr,
                    a_loc,
                );
                stores.push(gep);
                Value::Inst(gep)
            };
            let st = caller.create_inst_at(Op::Store(Value::imm32(0), addr), Ty::I32, a_loc);
            stores.push(st);
        }
        zero_stores.push((pos, stores));
    }
    // Apply removals + insertions back-to-front to keep positions stable.
    zero_stores.sort_by_key(|(p, _)| std::cmp::Reverse(*p));
    for (pos, stores) in zero_stores {
        caller.block_mut(from_block).insts.remove(pos);
        for (k, s) in stores.into_iter().enumerate() {
            caller.block_mut(from_block).insts.insert(pos + k, s);
        }
    }
    // Prepend allocas to caller entry (after existing leading allocas).
    let entry = caller.entry;
    let lead = caller
        .block(entry)
        .insts
        .iter()
        .take_while(|&&i| matches!(caller.inst(i).op, Op::Alloca(_)))
        .count();
    for (k, &(a, _)) in allocas.iter().enumerate() {
        caller.block_mut(entry).insts.insert(lead + k, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn check(src: &str, input: Vec<i32>, opts: InlineOptions) -> (String, usize) {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, rb, _) = twill_ir::interp::run_main(&m, input.clone(), 10_000_000).unwrap();
        let n = inline_module(&mut m, opts);
        crate::utils::assert_valid_ssa(&m);
        let (after, ra, _) = twill_ir::interp::run_main(&m, input, 10_000_000).unwrap();
        assert_eq!(before, after);
        assert_eq!(rb, ra);
        (print_module(&m), n)
    }

    #[test]
    fn inlines_simple_leaf() {
        let (out, n) = check(
            r#"
func @add3(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 3:i32
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = in
  %1 = call i32 @add3(%0)
  %2 = call i32 @add3(%1)
  out %2
  ret %2
}
"#,
            vec![10],
            InlineOptions::default(),
        );
        assert_eq!(n, 2);
        assert!(!out.split("func @main").nth(1).unwrap().contains("call"), "{out}");
    }

    #[test]
    fn inlines_branchy_callee_with_phi_result() {
        check(
            r#"
func @absdiff(i32, i32) -> i32 {
bb0:
  %0 = cmp sgt %a0, %a1
  condbr %0, bb1, bb2
bb1:
  %1 = sub i32 %a0, %a1
  ret %1
bb2:
  %2 = sub i32 %a1, %a0
  ret %2
}
func @main() -> i32 {
bb0:
  %0 = in
  %1 = in
  %2 = call i32 @absdiff(%0, %1)
  out %2
  ret %2
}
"#,
            vec![3, 9],
            InlineOptions::default(),
        );
    }

    #[test]
    fn inlined_loop_callee_in_loop() {
        // Callee with an alloca called in a loop: re-zeroing must preserve
        // load-before-store-reads-zero semantics.
        check(
            r#"
func @acc(i32) -> i32 {
bb0:
  %s = alloca 4
  %0 = load i32 %s
  %1 = add i32 %0, %a0
  store i32 %1, %s
  %2 = load i32 %s
  ret %2
}
func @main() -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb1: %3]
  %1 = phi i32 [bb0: 0:i32], [bb1: %2]
  %r = call i32 @acc(%0)
  %2 = add i32 %1, %r
  %3 = add i32 %0, 1:i32
  %c = cmp slt %3, 4:i32
  condbr %c, bb1, bb2
bb2:
  out %2
  ret %2
}
"#,
            vec![],
            InlineOptions::default(),
        );
    }

    #[test]
    fn threshold_respected() {
        let src = r#"
func @big(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  %1 = add i32 %0, 1:i32
  %2 = add i32 %1, 1:i32
  %3 = add i32 %2, 1:i32
  %4 = add i32 %3, 1:i32
  ret %4
}
func @main() -> i32 {
bb0:
  %0 = call i32 @big(1:i32)
  %1 = call i32 @big(%0)
  out %1
  ret %1
}
"#;
        let tiny =
            InlineOptions { small_threshold: 2, single_site_threshold: 2, ..Default::default() };
        let (out, n) = check(src, vec![], tiny);
        assert_eq!(n, 0);
        assert!(out.contains("call"), "{out}");
    }

    #[test]
    fn single_site_large_callee_inlined() {
        let src = r#"
func @big(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  %1 = add i32 %0, 1:i32
  %2 = add i32 %1, 1:i32
  %3 = add i32 %2, 1:i32
  %4 = add i32 %3, 1:i32
  ret %4
}
func @main() -> i32 {
bb0:
  %0 = call i32 @big(1:i32)
  out %0
  ret %0
}
"#;
        let opts =
            InlineOptions { small_threshold: 2, single_site_threshold: 50, ..Default::default() };
        let (_, n) = check(src, vec![], opts);
        assert_eq!(n, 1);
    }

    #[test]
    fn nested_call_chain_fully_inlined() {
        let (out, _) = check(
            r#"
func @a(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  ret %0
}
func @b(i32) -> i32 {
bb0:
  %0 = call i32 @a(%a0)
  %1 = mul i32 %0, 2:i32
  ret %1
}
func @main() -> i32 {
bb0:
  %0 = call i32 @b(5:i32)
  out %0
  ret %0
}
"#,
            vec![],
            InlineOptions::default(),
        );
        assert!(!out.split("func @main").nth(1).unwrap().contains("call"), "{out}");
    }
}
