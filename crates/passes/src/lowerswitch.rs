//! Lower `switch` to a chain of compare-and-branch blocks ("lowerswitch").
//!
//! The thesis runs LLVM's `-lowerswitch` so the PDG/DSWP machinery only ever
//! sees two-way branches; we do the same (a simple linear chain — CHStone
//! switches are small).

use twill_ir::{CmpOp, Function, Op, Ty, Value};

pub fn lowerswitch(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        // Find one switch.
        let mut found = None;
        'outer: for b in f.block_ids() {
            for &iid in &f.block(b).insts {
                if matches!(f.inst(iid).op, Op::Switch(..)) {
                    found = Some((b, iid));
                    break 'outer;
                }
            }
        }
        let Some((b, iid)) = found else { break };
        changed = true;
        let (v, cases, default) = match f.inst(iid).op.clone() {
            Op::Switch(v, cases, d) => (v, cases, d),
            _ => unreachable!(),
        };
        let vty = f.value_ty(v);

        if cases.is_empty() {
            f.inst_mut(iid).op = Op::Br(default);
            continue;
        }

        // Build the chain: block b tests case 0; fresh blocks test the rest.
        let mut test_blocks = vec![b];
        for i in 1..cases.len() {
            test_blocks.push(f.create_block(format!("switch.{}.{}", b.0, i)));
        }
        // Every compare/branch in the chain attributes to the switch's line.
        let sw_loc = f.loc(iid);
        for (i, (k, target)) in cases.iter().enumerate() {
            let this = test_blocks[i];
            let next = if i + 1 < cases.len() { test_blocks[i + 1] } else { default };
            let cmp = f.create_inst_at(Op::Cmp(CmpOp::Eq, v, Value::Imm(*k, vty)), Ty::I1, sw_loc);
            let br =
                f.create_inst_at(Op::CondBr(Value::Inst(cmp), *target, next), Ty::Void, sw_loc);
            if i == 0 {
                // Replace the switch in-place.
                let pos = f.block(b).insts.iter().position(|&x| x == iid).unwrap();
                f.block_mut(b).insts.truncate(pos);
                f.block_mut(b).insts.push(cmp);
                f.block_mut(b).insts.push(br);
            } else {
                f.block_mut(this).insts.push(cmp);
                f.block_mut(this).insts.push(br);
            }
        }

        // Fix phis: every former switch target had exactly one incoming
        // entry from `b`; its new predecessors are the test blocks that can
        // branch to it. Duplicate the saved value across those edges.
        let mut edges: Vec<(twill_ir::BlockId, twill_ir::BlockId)> = Vec::new();
        for (i, (_, target)) in cases.iter().enumerate() {
            edges.push((test_blocks[i], *target));
        }
        edges.push((*test_blocks.last().unwrap(), default));
        let mut targets: Vec<twill_ir::BlockId> = edges.iter().map(|(_, t)| *t).collect();
        targets.sort();
        targets.dedup();
        for t in targets {
            let phis: Vec<twill_ir::InstId> =
                f.block(t).insts.iter().copied().take_while(|&i| f.inst(i).op.is_phi()).collect();
            for phi in phis {
                if let Op::Phi(incoming) = &mut f.inst_mut(phi).op {
                    if let Some(pos) = incoming.iter().position(|(p, _)| *p == b) {
                        let (_, val) = incoming[pos];
                        incoming.retain(|(p, _)| *p != b);
                        let mut added = std::collections::HashSet::new();
                        for (src, tgt) in &edges {
                            if *tgt == t && added.insert(*src) {
                                incoming.push((*src, val));
                            }
                        }
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn check(src: &str, inputs: &[i32]) {
        for &i in inputs {
            let mut m = parse_module(src).unwrap();
            twill_ir::layout::assign_global_addrs(&mut m);
            let (before, _, _) = twill_ir::interp::run_main(&m, vec![i], 1_000_000).unwrap();
            for func in &mut m.funcs {
                lowerswitch(func);
            }
            crate::utils::assert_valid_ssa(&m);
            let out = print_module(&m);
            assert!(!out.contains("\n  switch"), "{out}");
            let (after, _, _) = twill_ir::interp::run_main(&m, vec![i], 1_000_000).unwrap();
            assert_eq!(before, after, "input {i}");
        }
    }

    #[test]
    fn three_way_switch() {
        check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  switch %0, [1: bb1], [2: bb2], [5: bb3], default bb4
bb1:
  out 10:i32
  ret 0:i32
bb2:
  out 20:i32
  ret 0:i32
bb3:
  out 50:i32
  ret 0:i32
bb4:
  out 99:i32
  ret 0:i32
}
"#,
            &[1, 2, 5, 7, -1],
        );
    }

    #[test]
    fn switch_with_phi_targets() {
        check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  switch %0, [1: bb1], [2: bb1], default bb2
bb1:
  %1 = phi i32 [bb0: 111:i32]
  out %1
  ret 0:i32
bb2:
  out 222:i32
  ret 0:i32
}
"#,
            &[1, 2, 3],
        );
    }

    #[test]
    fn empty_switch_becomes_br() {
        let src = "func @main() -> i32 {\nbb0:\n  %0 = in\n  switch %0, default bb1\nbb1:\n  out 5:i32\n  ret 0:i32\n}\n";
        let mut m = parse_module(src).unwrap();
        lowerswitch(&mut m.funcs[0]);
        let out = print_module(&m);
        assert!(out.contains("br bb1"), "{out}");
    }
}
