//! # twill-passes
//!
//! The analysis and transform passes the Twill compiler runs before thread
//! extraction, re-implementing the pipeline the thesis lists in §5.1/§5.2:
//!
//! > "basicaa", "mem2reg", "mergereturn", "lowerswitch", "indvars",
//! > "inline", "always-inline", "simplifycfg", "gvn", "adce", "loop-simplify"
//!
//! followed by the custom globals-to-arguments pass and the stock cleanups
//! ("deadargelim", "argpromotion", "constprop").
//!
//! Analyses: dominator/post-dominator trees with frontiers, natural-loop
//! info, a flow-insensitive points-to alias analysis, call-graph and purity.

pub mod alias;
pub mod callgraph;
pub mod constfold;
pub mod dce;
pub mod domtree;
pub mod globals2args;
pub mod gvn;
pub mod ifconvert;
pub mod inline;
pub mod loops;
pub mod lowerswitch;
pub mod mem2reg;
pub mod mergereturn;
pub mod par;
pub mod pipeline;
pub mod simplifycfg;
pub mod utils;

pub use domtree::{DomTree, PostDomTree};
pub use loops::LoopInfo;
pub use pipeline::{run_standard_pipeline, run_standard_pipeline_threads, PipelineOptions};
