//! CFG simplification ("simplifycfg").
//!
//! * removes unreachable blocks,
//! * merges a block into its unique predecessor when that predecessor has a
//!   single successor,
//! * forwards empty blocks (containing only an unconditional branch) when
//!   doing so cannot make a successor phi ambiguous,
//! * collapses `condbr c, t, t` into `br t`,
//! * deduplicates identical phi incoming entries.
//!
//! Every rewrite preserves phi correctness; the pass runs to fixpoint.

use std::collections::HashSet;
use twill_ir::{BlockId, Function, Op, Value};

pub fn simplifycfg(f: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let mut changed = false;
        changed |= crate::utils::remove_unreachable_blocks(f);
        changed |= collapse_same_target_condbr(f);
        changed |= merge_into_predecessor(f);
        changed |= forward_empty_blocks(f);
        changed |= crate::utils::remove_unreachable_blocks(f);
        changed_any |= changed;
        if !changed {
            break;
        }
    }
    changed_any
}

/// `condbr c, t, t` → `br t`.
fn collapse_same_target_condbr(f: &mut Function) -> bool {
    let mut changed = false;
    for b in 0..f.blocks.len() {
        let Some(term) = f.blocks[b].terminator() else { continue };
        if let Op::CondBr(_, t, e) = f.inst(term).op {
            if t == e {
                f.inst_mut(term).op = Op::Br(t);
                // Target phis may now have a duplicate entry for this pred;
                // drop extras (values are identical only if the IR was
                // unambiguous; we keep the first, matching the interpreter).
                dedup_phi_entries(f, t);
                changed = true;
            }
        }
    }
    changed
}

fn dedup_phi_entries(f: &mut Function, b: BlockId) {
    let insts: Vec<twill_ir::InstId> = f.block(b).insts.clone();
    for iid in insts {
        if let Op::Phi(incoming) = &mut f.inst_mut(iid).op {
            let mut seen = HashSet::new();
            incoming.retain(|(p, _)| seen.insert(*p));
        } else {
            break;
        }
    }
}

/// Merge block `s` into `p` when `p -> s` is the only edge out of `p` and
/// into `s`.
fn merge_into_predecessor(f: &mut Function) -> bool {
    let preds = f.predecessors();
    for si in 0..f.blocks.len() {
        let s = BlockId::new(si);
        if s == f.entry {
            continue;
        }
        let ps = &preds[s.index()];
        if ps.len() != 1 {
            continue;
        }
        let p = ps[0];
        if p == s {
            continue; // self-loop
        }
        if f.successors(p).len() != 1 {
            continue;
        }
        // p ends in `br s`; merge.
        let term = f.block(p).terminator().unwrap();
        debug_assert!(matches!(f.inst(term).op, Op::Br(_)));
        // Phis in s have a single incoming (from p): replace with the value.
        let s_insts = f.block(s).insts.clone();
        let mut tail: Vec<twill_ir::InstId> = Vec::new();
        for iid in s_insts {
            let is_phi = f.inst(iid).op.is_phi();
            if is_phi {
                let v = match &f.inst(iid).op {
                    Op::Phi(inc) => {
                        debug_assert_eq!(inc.len(), 1);
                        inc[0].1
                    }
                    _ => unreachable!(),
                };
                f.replace_all_uses(Value::Inst(iid), v);
            } else {
                tail.push(iid);
            }
        }
        // Remove p's terminator, append s's non-phi instructions.
        f.block_mut(p).insts.pop();
        f.block_mut(p).insts.extend(tail);
        f.block_mut(s).insts.clear();
        // Phis in s's successors referring to s must now refer to p.
        let succs_of_s: Vec<BlockId> =
            f.block(p).terminator().map(|t| f.inst(t).op.successors()).unwrap_or_default();
        for t in succs_of_s {
            crate::utils::retarget_phi_pred(f, t, s, p);
        }
        // s is now empty/unreachable; compact.
        let mut keep = vec![true; f.blocks.len()];
        keep[s.index()] = false;
        crate::utils::compact_blocks(f, &keep);
        return true; // one merge per iteration keeps indices simple
    }
    false
}

/// Redirect predecessors of empty `br`-only blocks straight to the target.
fn forward_empty_blocks(f: &mut Function) -> bool {
    let preds = f.predecessors();
    for ei in 0..f.blocks.len() {
        let e = BlockId::new(ei);
        if e == f.entry {
            continue;
        }
        let blk = f.block(e);
        if blk.insts.len() != 1 {
            continue;
        }
        let Op::Br(t) = f.inst(blk.insts[0]).op else { continue };
        if t == e {
            continue;
        }
        let ps: Vec<BlockId> = preds[e.index()].clone();
        if ps.is_empty() {
            continue;
        }
        // Check safety for each pred: after forwarding, `t`'s phis must be
        // unambiguous. If t has phis, require that no pred of e is already
        // a predecessor of t, and that each pred appears only once.
        let t_has_phis = f.block(t).insts.first().map(|&i| f.inst(i).op.is_phi()).unwrap_or(false);
        if t_has_phis {
            let t_preds: HashSet<BlockId> = f.predecessors()[t.index()].iter().copied().collect();
            let mut uniq = HashSet::new();
            if ps.iter().any(|p| t_preds.contains(p) || !uniq.insert(*p)) {
                continue;
            }
        }
        // Rewrite each pred's terminator edge e -> t.
        for &p in &ps {
            let term = f.block(p).terminator().unwrap();
            f.inst_mut(term).op.for_each_successor_mut(|b| {
                if *b == e {
                    *b = t;
                }
            });
        }
        // Phi entries in t coming from e: duplicate for each pred.
        let t_insts = f.block(t).insts.clone();
        for iid in t_insts {
            let op = &mut f.inst_mut(iid).op;
            if let Op::Phi(incoming) = op {
                if let Some(pos) = incoming.iter().position(|(b, _)| *b == e) {
                    let (_, v) = incoming.remove(pos);
                    for &p in &ps {
                        incoming.push((p, v));
                    }
                }
            } else {
                break;
            }
        }
        // e is unreachable now; remove.
        let mut keep = vec![true; f.blocks.len()];
        keep[e.index()] = false;
        crate::utils::compact_blocks(f, &keep);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn simplify_and_check(src: &str, input: Vec<i32>) -> (String, usize) {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, _, _) = twill_ir::interp::run_main(&m, input.clone(), 1_000_000).unwrap();
        for func in &mut m.funcs {
            simplifycfg(func);
        }
        crate::utils::assert_valid_ssa(&m);
        let (after, _, _) = twill_ir::interp::run_main(&m, input, 1_000_000).unwrap();
        assert_eq!(before, after);
        let nblocks = m.funcs.iter().map(|f| f.blocks.len()).sum();
        (print_module(&m), nblocks)
    }

    #[test]
    fn merges_straightline_chain() {
        let (out, nblocks) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  %0 = add i32 1:i32, 2:i32
  br bb1
bb1:
  %1 = add i32 %0, 3:i32
  br bb2
bb2:
  out %1
  ret %1
}
"#,
            vec![],
        );
        assert_eq!(nblocks, 1, "{out}");
    }

    #[test]
    fn collapses_same_target_condbr() {
        let (out, _) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %1 = cmp sgt %0, 0:i32
  condbr %1, bb1, bb1
bb1:
  out %0
  ret %0
}
"#,
            vec![3],
        );
        assert!(!out.contains("condbr"), "{out}");
    }

    #[test]
    fn forwards_empty_block() {
        let (out, nblocks) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %1 = cmp sgt %0, 0:i32
  condbr %1, bb1, bb2
bb1:
  br bb3
bb2:
  out 0:i32
  br bb3
bb3:
  out %0
  ret %0
}
"#,
            vec![1],
        );
        // bb1 forwarded; bb3 phi-less so safe.
        assert!(nblocks <= 3, "{out}");
    }

    #[test]
    fn empty_block_with_phi_target_kept_when_ambiguous() {
        // Forwarding bb1 would give bb3 two edges from bb0 with different
        // phi values; must not happen.
        let (out, _) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %1 = cmp sgt %0, 0:i32
  condbr %1, bb1, bb3
bb1:
  br bb3
bb3:
  %2 = phi i32 [bb1: 1:i32], [bb0: 2:i32]
  out %2
  ret %2
}
"#,
            vec![1],
        );
        // Values still correct (checked by simplify_and_check); phi intact.
        assert!(out.contains("phi"), "{out}");
    }

    #[test]
    fn removes_unreachable_code() {
        let (_, nblocks) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  ret 1:i32
bb1:
  out 9:i32
  ret 2:i32
}
"#,
            vec![],
        );
        assert_eq!(nblocks, 1);
    }

    #[test]
    fn loop_structure_preserved() {
        let (out, _) = simplify_and_check(
            r#"
func @main() -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb2: %1]
  %c = cmp slt %0, 5:i32
  condbr %c, bb2, bb3
bb2:
  %1 = add i32 %0, 1:i32
  br bb1
bb3:
  out %0
  ret %0
}
"#,
            vec![],
        );
        assert!(out.contains("phi"), "{out}");
        assert!(out.contains("condbr"), "{out}");
    }

    #[test]
    fn fixpoint_is_stable() {
        let src = r#"
func @main() -> i32 {
bb0:
  br bb1
bb1:
  br bb2
bb2:
  br bb3
bb3:
  ret 7:i32
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(simplifycfg(&mut m.funcs[0]));
        let once = print_module(&m);
        assert!(!simplifycfg(&mut m.funcs[0]));
        assert_eq!(once, print_module(&m));
        assert_eq!(m.funcs[0].blocks.len(), 1);
    }
}
