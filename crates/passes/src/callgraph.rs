//! Call graph and interprocedural effect (purity) analysis.
//!
//! Twill rejects recursion (like the thesis), so the call graph is a DAG and
//! bottom-up summaries are exact fixpoints in one reverse-topological pass.

use std::collections::HashSet;
use twill_ir::{FuncId, Intr, Module, Op};

/// Direct call edges per function.
pub struct CallGraph {
    /// `callees[f]` = functions f calls (deduplicated).
    pub callees: Vec<Vec<FuncId>>,
    /// `callers[f]` = functions calling f.
    pub callers: Vec<Vec<FuncId>>,
    /// Reverse-topological order (callees before callers). Empty if the
    /// graph has a cycle (recursion), which `is_recursive` reports.
    pub reverse_topo: Vec<FuncId>,
    recursive: bool,
}

impl CallGraph {
    pub fn new(m: &Module) -> CallGraph {
        let n = m.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for fid in m.func_ids() {
            let f = m.func(fid);
            let mut seen = HashSet::new();
            for (_, iid) in f.inst_ids_in_layout() {
                if let Op::Call(callee, _) = &f.inst(iid).op {
                    if seen.insert(*callee) {
                        callees[fid.index()].push(*callee);
                        callers[callee.index()].push(fid);
                    }
                }
            }
        }
        // Kahn topological sort on the "calls" relation.
        let mut out_deg: Vec<usize> = callees.iter().map(|c| c.len()).collect();
        let mut ready: Vec<FuncId> = (0..n).filter(|&i| out_deg[i] == 0).map(FuncId::new).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(f) = ready.pop() {
            order.push(f);
            for &caller in &callers[f.index()] {
                out_deg[caller.index()] -= 1;
                if out_deg[caller.index()] == 0 {
                    ready.push(caller);
                }
            }
        }
        let recursive = order.len() != n;
        CallGraph { callees, callers, reverse_topo: order, recursive }
    }

    pub fn is_recursive(&self) -> bool {
        self.recursive
    }

    /// Functions involved in call cycles (direct or mutual recursion).
    pub fn recursive_funcs(&self, m: &Module) -> Vec<bool> {
        let n = m.funcs.len();
        // f is recursive iff f reaches itself through ≥1 call edge.
        let mut out = vec![false; n];
        for (f, of) in out.iter_mut().enumerate() {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = self.callees[f].iter().map(|c| c.index()).collect();
            while let Some(x) = stack.pop() {
                if x == f {
                    *of = true;
                    break;
                }
                if seen[x] {
                    continue;
                }
                seen[x] = true;
                for &c in &self.callees[x] {
                    stack.push(c.index());
                }
            }
        }
        out
    }

    /// `recursive_funcs` plus everything they (transitively) call — the set
    /// the hybrid flow pins to the software master (thesis §7: recursion
    /// "is only a problem in hardware"; the master call stays in software).
    pub fn software_pinned_set(&self, m: &Module) -> Vec<bool> {
        let rec = self.recursive_funcs(m);
        let mut pinned = rec.clone();
        let mut stack: Vec<usize> = (0..m.funcs.len()).filter(|&f| pinned[f]).collect();
        while let Some(f) = stack.pop() {
            for &c in &self.callees[f] {
                if !pinned[c.index()] {
                    pinned[c.index()] = true;
                    stack.push(c.index());
                }
            }
        }
        pinned
    }

    /// Reverse-topological order over the call graph with the pinned set
    /// collapsed (pinned functions first in arbitrary order — they are not
    /// planned — then the acyclic remainder, callees before callers).
    pub fn reverse_topo_excluding(&self, m: &Module, skip: &[bool]) -> Vec<FuncId> {
        let n = m.funcs.len();
        let mut out: Vec<FuncId> = (0..n).filter(|&f| skip[f]).map(FuncId::new).collect();
        // Kahn over the non-skipped subgraph.
        let mut deg = vec![0usize; n];
        for f in 0..n {
            if skip[f] {
                continue;
            }
            deg[f] = self.callees[f].iter().filter(|c| !skip[c.index()]).count();
        }
        let mut ready: Vec<FuncId> =
            (0..n).filter(|&f| !skip[f] && deg[f] == 0).map(FuncId::new).collect();
        while let Some(f) = ready.pop() {
            out.push(f);
            for &caller in &self.callers[f.index()] {
                if skip[caller.index()] {
                    continue;
                }
                deg[caller.index()] -= 1;
                if deg[caller.index()] == 0 {
                    ready.push(caller);
                }
            }
        }
        out
    }

    /// Number of static call sites of `f` across the module.
    pub fn call_site_count(&self, m: &Module, f: FuncId) -> usize {
        let mut count = 0;
        for fid in m.func_ids() {
            let func = m.func(fid);
            for (_, iid) in func.inst_ids_in_layout() {
                if matches!(&func.inst(iid).op, Op::Call(c, _) if *c == f) {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Interprocedural effect summary for each function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    pub reads_mem: bool,
    pub writes_mem: bool,
    /// Stream I/O or runtime (queue/semaphore) intrinsics.
    pub has_io: bool,
    /// May trap (division whose divisor is not a non-zero constant).
    pub may_trap: bool,
}

impl Effects {
    /// Completely pure: removable if the result is unused.
    pub fn is_pure(&self) -> bool {
        !self.reads_mem && !self.writes_mem && !self.has_io && !self.may_trap
    }

    pub fn union(self, o: Effects) -> Effects {
        Effects {
            reads_mem: self.reads_mem || o.reads_mem,
            writes_mem: self.writes_mem || o.writes_mem,
            has_io: self.has_io || o.has_io,
            may_trap: self.may_trap || o.may_trap,
        }
    }
}

/// Bottom-up effect computation. Recursive cliques (and their callees)
/// are summarized conservatively as fully impure; the acyclic remainder is
/// exact.
pub fn function_effects(m: &Module) -> Vec<Effects> {
    let cg = CallGraph::new(m);
    let mut fx = vec![Effects::default(); m.funcs.len()];
    let order: Vec<FuncId> = if cg.is_recursive() {
        let pinned = cg.software_pinned_set(m);
        for (f, &p) in pinned.iter().enumerate() {
            if p {
                fx[f] = Effects { reads_mem: true, writes_mem: true, has_io: true, may_trap: true };
            }
        }
        cg.reverse_topo_excluding(m, &pinned).into_iter().filter(|f| !pinned[f.index()]).collect()
    } else {
        cg.reverse_topo.clone()
    };
    for fid in order {
        let f = m.func(fid);
        let mut e = Effects::default();
        for (_, iid) in f.inst_ids_in_layout() {
            match &f.inst(iid).op {
                Op::Load(_) => e.reads_mem = true,
                Op::Store(..) => e.writes_mem = true,
                Op::Intrin(i, _) => match i {
                    Intr::Out | Intr::In => e.has_io = true,
                    _ => e.has_io = true,
                },
                Op::Call(c, _) => e = e.union(fx[c.index()]),
                // Indirect targets are unknown: fully impure.
                Op::CallIndirect(..) => {
                    e = e.union(Effects {
                        reads_mem: true,
                        writes_mem: true,
                        has_io: true,
                        may_trap: true,
                    })
                }
                op @ Op::Bin(b, _, _) if b.can_trap() && op.has_side_effect() => {
                    e.may_trap = true;
                }
                _ => {}
            }
        }
        fx[fid.index()] = e;
    }
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    const SRC: &str = r#"
func @pure(i32) -> i32 {
bb0:
  %0 = mul i32 %a0, %a0
  ret %0
}
func @writer(ptr) -> void {
bb0:
  store i32 1:i32, %a0
  ret
}
func @top(ptr) -> i32 {
bb0:
  %0 = call i32 @pure(3:i32)
  call void @writer(%a0)
  ret %0
}
"#;

    #[test]
    fn call_graph_edges_and_topo() {
        let m = parse_module(SRC).unwrap();
        let cg = CallGraph::new(&m);
        assert!(!cg.is_recursive());
        assert_eq!(cg.callees[2].len(), 2);
        assert_eq!(cg.callers[0], vec![FuncId(2)]);
        // reverse topo: leaves first.
        let pos = |name: &str| {
            let id = m.find_func(name).unwrap();
            cg.reverse_topo.iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("pure") < pos("top"));
        assert!(pos("writer") < pos("top"));
    }

    #[test]
    fn effects_propagate_up() {
        let m = parse_module(SRC).unwrap();
        let fx = function_effects(&m);
        let id = |n: &str| m.find_func(n).unwrap().index();
        assert!(fx[id("pure")].is_pure());
        assert!(fx[id("writer")].writes_mem);
        assert!(!fx[id("writer")].reads_mem);
        assert!(fx[id("top")].writes_mem);
        assert!(!fx[id("top")].has_io);
    }

    #[test]
    fn pinned_set_and_condensed_topo() {
        let src = r#"
func @helper(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  ret %0
}
func @rec(i32) -> i32 {
bb0:
  %c = cmp sgt %a0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %1 = sub i32 %a0, 1:i32
  %2 = call i32 @rec(%1)
  %3 = call i32 @helper(%2)
  ret %3
bb2:
  ret 0:i32
}
func @main() -> i32 {
bb0:
  %0 = call i32 @rec(5:i32)
  %1 = call i32 @helper(%0)
  ret %1
}
"#;
        let m = twill_ir::parser::parse_module(src).unwrap();
        let cg = CallGraph::new(&m);
        assert!(cg.is_recursive());
        let rec = cg.recursive_funcs(&m);
        let pinned = cg.software_pinned_set(&m);
        let id = |n: &str| m.find_func(n).unwrap().index();
        assert!(rec[id("rec")]);
        assert!(!rec[id("helper")]);
        assert!(!rec[id("main")]);
        // helper is called from rec: pinned too. main is not.
        assert!(pinned[id("rec")]);
        assert!(pinned[id("helper")]);
        assert!(!pinned[id("main")]);
        // Condensed order covers everything once.
        let order = cg.reverse_topo_excluding(&m, &pinned);
        assert_eq!(order.len(), 3);
        // Effects: pinned impure, main inherits.
        let fx = function_effects(&m);
        assert!(!fx[id("rec")].is_pure());
        assert!(!fx[id("main")].is_pure());
    }

    #[test]
    fn recursion_detected() {
        let src = r#"
func @a() -> void {
bb0:
  call void @b()
  ret
}
func @b() -> void {
bb0:
  call void @a()
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let cg = CallGraph::new(&m);
        assert!(cg.is_recursive());
        // Effects degrade conservatively.
        let fx = function_effects(&m);
        assert!(fx.iter().all(|e| !e.is_pure()));
    }

    #[test]
    fn call_site_counting() {
        let src = r#"
func @leaf() -> void {
bb0:
  ret
}
func @f() -> void {
bb0:
  call void @leaf()
  call void @leaf()
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.call_site_count(&m, FuncId(0)), 2);
        assert_eq!(cg.call_site_count(&m, FuncId(1)), 0);
    }
}
