//! Promote memory slots to SSA registers ("mem2reg").
//!
//! The mini-C frontend lowers every local variable to an entry-block
//! `alloca` with explicit loads/stores (exactly like Clang at -O0); this
//! pass rebuilds SSA form with phi insertion at iterated dominance
//! frontiers and a dominator-tree renaming walk (Cytron et al.), mirroring
//! LLVM's `-mem2reg` which the thesis runs first.
//!
//! A slot is promotable when it is a scalar (≤ 4 bytes), never escapes, is
//! only accessed through whole-slot loads/stores of one consistent type,
//! and is never itself stored as a value. Loads before any store read 0
//! (allocas are zero-initialized by the interpreter, so semantics are
//! preserved exactly).

use crate::alias::alloca_escapes;
use crate::domtree::DomTree;
use std::collections::{HashMap, HashSet};
use twill_ir::{BlockId, Function, InstId, Op, Ty, Value};

pub fn mem2reg(f: &mut Function) -> bool {
    crate::utils::remove_unreachable_blocks(f);
    let candidates = find_promotable(f);
    if candidates.is_empty() {
        return false;
    }
    let dt = DomTree::new(f);
    let preds = f.predecessors();

    // slot index per alloca
    let slot_of: HashMap<InstId, usize> =
        candidates.iter().enumerate().map(|(i, (a, _))| (*a, i)).collect();
    let slot_ty: Vec<Ty> = candidates.iter().map(|(_, t)| *t).collect();

    // 1. Phi insertion at iterated dominance frontiers of def blocks.
    let owner = f.inst_blocks();
    let mut phi_for: HashMap<(BlockId, usize), InstId> = HashMap::new();
    for (slot, (alloca, ty)) in candidates.iter().enumerate() {
        let mut def_blocks: Vec<BlockId> = Vec::new();
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::Store(_, addr) = &f.inst(iid).op {
                if *addr == Value::Inst(*alloca) {
                    def_blocks.push(owner[iid.index()].unwrap());
                }
            }
        }
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        let mut work: Vec<BlockId> = def_blocks.clone();
        while let Some(b) = work.pop() {
            for &frontier_block in &dt.frontier[b.index()] {
                if has_phi.insert(frontier_block) {
                    // Placeholder phi; incoming filled during renaming.
                    // Attributes to the promoted variable's declaration line.
                    let phi = f.create_inst_at(Op::Phi(Vec::new()), *ty, f.loc(*alloca));
                    f.block_mut(frontier_block).insts.insert(0, phi);
                    phi_for.insert((frontier_block, slot), phi);
                    work.push(frontier_block);
                }
            }
        }
    }

    // 2. Renaming walk over the dominator tree.
    let nslots = candidates.len();
    let mut stacks: Vec<Vec<Value>> =
        (0..nslots).map(|s| vec![Value::Imm(0, slot_ty[s])]).collect();
    let mut replace: Vec<(Value, Value)> = Vec::new(); // (load result, value)
    let mut dead: HashSet<InstId> = HashSet::new();
    let mut phi_incoming: HashMap<InstId, Vec<(BlockId, Value)>> = HashMap::new();

    // Recursive walk via explicit stack: (block, pushed counts per slot).
    #[allow(clippy::too_many_arguments)]
    fn walk(
        f: &Function,
        dt: &DomTree,
        preds: &[Vec<BlockId>],
        b: BlockId,
        slot_of: &HashMap<InstId, usize>,
        phi_for: &HashMap<(BlockId, usize), InstId>,
        stacks: &mut Vec<Vec<Value>>,
        replace: &mut Vec<(Value, Value)>,
        dead: &mut HashSet<InstId>,
        phi_incoming: &mut HashMap<InstId, Vec<(BlockId, Value)>>,
    ) {
        let mut pushed: Vec<usize> = vec![0; stacks.len()];
        for &iid in &f.block(b).insts {
            match &f.inst(iid).op {
                Op::Phi(_) => {
                    // Is this one of our inserted phis?
                    for (key, phi) in phi_for.iter() {
                        if *phi == iid && key.0 == b {
                            stacks[key.1].push(Value::Inst(iid));
                            pushed[key.1] += 1;
                        }
                    }
                }
                Op::Load(Value::Inst(a)) => {
                    if let Some(&slot) = slot_of.get(a) {
                        let cur = *stacks[slot].last().unwrap();
                        replace.push((Value::Inst(iid), cur));
                        dead.insert(iid);
                    }
                }
                Op::Store(v, Value::Inst(a)) => {
                    if let Some(&slot) = slot_of.get(a) {
                        stacks[slot].push(*v);
                        pushed[slot] += 1;
                        dead.insert(iid);
                    }
                }
                _ => {}
            }
        }
        // Fill successor phi incomings.
        for s in f.successors(b) {
            for (key, phi) in phi_for.iter() {
                if key.0 == s {
                    let cur = *stacks[key.1].last().unwrap();
                    let entry = phi_incoming.entry(*phi).or_default();
                    if !entry.iter().any(|(p, _)| *p == b) {
                        entry.push((b, cur));
                    }
                }
            }
        }
        let _ = preds;
        for &c in &dt.children[b.index()] {
            walk(f, dt, preds, c, slot_of, phi_for, stacks, replace, dead, phi_incoming);
        }
        for (slot, n) in pushed.iter().enumerate() {
            for _ in 0..*n {
                stacks[slot].pop();
            }
        }
    }

    walk(
        f,
        &dt,
        &preds,
        f.entry,
        &slot_of,
        &phi_for,
        &mut stacks,
        &mut replace,
        &mut dead,
        &mut phi_incoming,
    );

    // 3. Commit: phi operands, load replacements (transitively resolving
    // loads replaced by other loads), drop allocas/loads/stores.
    for (phi, incoming) in phi_incoming {
        if let Op::Phi(inc) = &mut f.inst_mut(phi).op {
            *inc = incoming;
        }
    }
    // Resolve replacement chains (a load's replacement may itself be a
    // removed load).
    let map: HashMap<Value, Value> = replace.iter().copied().collect();
    let resolve = |mut v: Value| {
        let mut fuel = map.len() + 1;
        while let Some(&next) = map.get(&v) {
            v = next;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        v
    };
    for inst in &mut f.insts {
        inst.op.for_each_value_mut(|v| {
            let r = resolve(*v);
            if r != *v {
                *v = r;
            }
        });
    }
    for (alloca, _) in &candidates {
        dead.insert(*alloca);
    }
    crate::utils::remove_insts(f, &dead);
    true
}

/// Find promotable allocas and the consistent access type of each.
fn find_promotable(f: &Function) -> Vec<(InstId, Ty)> {
    let mut out = Vec::new();
    for &iid in &f.block(f.entry).insts {
        let Op::Alloca(size) = &f.inst(iid).op else { continue };
        if *size > 4 {
            continue;
        }
        if alloca_escapes(f, iid) {
            continue;
        }
        // All uses must be direct Load(a) / Store(_, a); collect the type.
        let mut ty: Option<Ty> = None;
        let mut ok = true;
        for (_, uid) in f.inst_ids_in_layout() {
            let inst = f.inst(uid);
            let mut uses_it = false;
            inst.op.for_each_value(|v| {
                if v == Value::Inst(iid) {
                    uses_it = true;
                }
            });
            if !uses_it {
                continue;
            }
            match &inst.op {
                Op::Load(addr) if *addr == Value::Inst(iid) => {
                    let t = inst.ty;
                    if *ty.get_or_insert(t) != t {
                        ok = false;
                    }
                }
                Op::Store(v, addr) if *addr == Value::Inst(iid) && *v != Value::Inst(iid) => {
                    let t = inst.ty;
                    if *ty.get_or_insert(t) != t {
                        ok = false;
                    }
                }
                _ => {
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        let ty = ty.unwrap_or(Ty::I32);
        if ty.bytes() > *size {
            continue;
        }
        out.push((iid, ty));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn check_equiv(src: &str, input: Vec<i32>) -> String {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, rb, _) = twill_ir::interp::run_main(&m, input.clone(), 1_000_000).unwrap();
        for func in &mut m.funcs {
            mem2reg(func);
        }
        crate::utils::assert_valid_ssa(&m);
        let (after, ra, _) = twill_ir::interp::run_main(&m, input, 1_000_000).unwrap();
        assert_eq!(before, after);
        assert_eq!(rb, ra);
        print_module(&m)
    }

    #[test]
    fn straight_line_promotion() {
        let out = check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %0 = alloca 4
  store i32 5:i32, %0
  %1 = load i32 %0
  %2 = add i32 %1, 1:i32
  store i32 %2, %0
  %3 = load i32 %0
  out %3
  ret %3
}
"#,
            vec![],
        );
        assert!(!out.contains("alloca"), "{out}");
        assert!(!out.contains("load"), "{out}");
    }

    #[test]
    fn diamond_inserts_phi() {
        let out = check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %0 = alloca 4
  %1 = in
  %2 = cmp sgt %1, 0:i32
  condbr %2, bb1, bb2
bb1:
  store i32 10:i32, %0
  br bb3
bb2:
  store i32 20:i32, %0
  br bb3
bb3:
  %3 = load i32 %0
  out %3
  ret %3
}
"#,
            vec![5],
        );
        assert!(out.contains("phi i32"), "{out}");
        assert!(!out.contains("alloca"), "{out}");
    }

    #[test]
    fn loop_counter_promotes_to_phi_cycle() {
        let out = check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %0 = alloca 4
  %s = alloca 4
  store i32 0:i32, %0
  store i32 0:i32, %s
  br bb1
bb1:
  %1 = load i32 %0
  %2 = cmp slt %1, 10:i32
  condbr %2, bb2, bb3
bb2:
  %3 = load i32 %s
  %4 = add i32 %3, %1
  store i32 %4, %s
  %5 = add i32 %1, 1:i32
  store i32 %5, %0
  br bb1
bb3:
  %6 = load i32 %s
  out %6
  ret %6
}
"#,
            vec![],
        );
        assert!(!out.contains("alloca"), "{out}");
        assert_eq!(out.matches("phi").count(), 2, "{out}");
    }

    #[test]
    fn load_before_store_reads_zero() {
        let out = check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %0 = alloca 4
  %1 = load i32 %0
  out %1
  ret %1
}
"#,
            vec![],
        );
        assert!(out.contains("out 0:i32"), "{out}");
    }

    #[test]
    fn escaping_alloca_not_promoted() {
        let out = check_equiv(
            r#"
func @take(ptr) -> i32 {
bb0:
  %0 = load i32 %a0
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = alloca 4
  store i32 9:i32, %0
  %1 = call i32 @take(%0)
  out %1
  ret %1
}
"#,
            vec![],
        );
        assert!(out.contains("alloca"), "{out}");
    }

    #[test]
    fn array_alloca_not_promoted() {
        let out = check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %0 = alloca 16
  %1 = gep %0, 2:i32, 4
  store i32 7:i32, %1
  %2 = load i32 %1
  out %2
  ret %2
}
"#,
            vec![],
        );
        assert!(out.contains("alloca 16"), "{out}");
    }

    #[test]
    fn nested_loops_promote_correctly() {
        check_equiv(
            r#"
func @main() -> i32 {
bb0:
  %i = alloca 4
  %acc = alloca 4
  %j = alloca 4
  store i32 0:i32, %i
  store i32 0:i32, %acc
  br bb1
bb1:
  %0 = load i32 %i
  %1 = cmp slt %0, 3:i32
  condbr %1, bb2, bb6
bb2:
  store i32 0:i32, %j
  br bb3
bb3:
  %2 = load i32 %j
  %3 = cmp slt %2, 4:i32
  condbr %3, bb4, bb5
bb4:
  %4 = load i32 %acc
  %5 = mul i32 %0, 10:i32
  %6 = add i32 %5, %2
  %7 = add i32 %4, %6
  store i32 %7, %acc
  %8 = add i32 %2, 1:i32
  store i32 %8, %j
  br bb3
bb5:
  %9 = load i32 %i
  %10 = add i32 %9, 1:i32
  store i32 %10, %i
  br bb1
bb6:
  %11 = load i32 %acc
  out %11
  ret %11
}
"#,
            vec![],
        );
    }
}
