//! Global value numbering ("gvn", scoped-hash-table flavor).
//!
//! Walks the dominator tree keeping a scoped table of `(opcode, operands)`
//! expression keys; a pure instruction whose key is already bound to a
//! dominating definition is replaced by it. Commutative operators
//! canonicalize operand order. Also performs simple redundant-load
//! elimination *within a block*: a load from the same address as an earlier
//! load (or store) with no intervening may-alias write, call or intrinsic
//! reuses the earlier value.

use crate::alias::AliasInfo;
use crate::domtree::DomTree;
use std::collections::{HashMap, HashSet};
use twill_ir::{BinOp, BlockId, Function, InstId, Op, Ty, Value};

#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, Value, Value),
    Cmp(twill_ir::CmpOp, Value, Value),
    Cast(twill_ir::CastOp, Ty, Value),
    Select(Value, Value, Value),
    Gep(Value, Value, u32),
    GlobalAddr(twill_ir::GlobalId),
}

pub fn gvn(f: &mut Function) -> bool {
    let dt = DomTree::new(f);
    let aa = AliasInfo::new(f);
    let mut table: HashMap<Key, Vec<(usize, Value)>> = HashMap::new(); // key -> stack of (depth, value)
    let mut replace: HashMap<InstId, Value> = HashMap::new();

    fn key_of(f: &Function, iid: InstId) -> Option<Key> {
        let inst = f.inst(iid);
        Some(match &inst.op {
            Op::Bin(b, x, y) => {
                if b.can_trap() {
                    // Division can still be numbered (same operands, same
                    // trap behavior) — identical expression is safe.
                }
                let (x, y) = if b.commutative() && format!("{y:?}") < format!("{x:?}") {
                    (*y, *x)
                } else {
                    (*x, *y)
                };
                Key::Bin(*b, x, y)
            }
            Op::Cmp(c, x, y) => Key::Cmp(*c, *x, *y),
            Op::Cast(c, v) => Key::Cast(*c, inst.ty, *v),
            Op::Select(c, a, b) => Key::Select(*c, *a, *b),
            Op::Gep(b, i, s) => Key::Gep(*b, *i, *s),
            Op::GlobalAddr(g) => Key::GlobalAddr(*g),
            _ => return None,
        })
    }

    // Recursive scoped walk.
    fn walk(
        f: &Function,
        dt: &DomTree,
        aa: &AliasInfo,
        b: BlockId,
        depth: usize,
        table: &mut HashMap<Key, Vec<(usize, Value)>>,
        replace: &mut HashMap<InstId, Value>,
    ) {
        let mut pushed: Vec<Key> = Vec::new();
        // Block-local available loads: addr value -> loaded value, type.
        let mut avail_loads: Vec<(Value, Value, Ty)> = Vec::new();
        for &iid in &f.block(b).insts {
            let inst = f.inst(iid);
            // Resolve operands through prior replacements for better hits.
            match &inst.op {
                Op::Load(addr) => {
                    let addr = *addr;
                    if let Some((_, v, _)) =
                        avail_loads.iter().find(|(a, _, t)| *a == addr && *t == inst.ty)
                    {
                        replace.insert(iid, *v);
                    } else {
                        avail_loads.push((addr, Value::Inst(iid), inst.ty));
                    }
                }
                Op::Store(v, addr) => {
                    // Invalidate may-alias loads; the stored value becomes
                    // available at this address.
                    avail_loads.retain(|(a, _, _)| !aa.may_alias(*a, *addr));
                    avail_loads.push((*addr, *v, inst.ty));
                }
                Op::Call(..) | Op::CallIndirect(..) | Op::Intrin(..) => {
                    avail_loads.clear();
                }
                _ => {
                    if let Some(key) = key_of(f, iid) {
                        match table.get(&key).and_then(|s| s.last()) {
                            Some((_, v)) => {
                                replace.insert(iid, *v);
                            }
                            None => {
                                table
                                    .entry(key.clone())
                                    .or_default()
                                    .push((depth, Value::Inst(iid)));
                                pushed.push(key);
                            }
                        }
                    }
                }
            }
        }
        for &c in &dt.children[b.index()] {
            walk(f, dt, aa, c, depth + 1, table, replace);
        }
        for key in pushed {
            table.get_mut(&key).unwrap().pop();
        }
    }

    walk(f, &dt, &aa, f.entry, 0, &mut table, &mut replace);

    if replace.is_empty() {
        return false;
    }
    // Apply with chain resolution.
    let resolve = |mut v: Value| {
        let mut fuel = replace.len() + 1;
        while let Value::Inst(i) = v {
            match replace.get(&i) {
                Some(&next) if fuel > 0 => {
                    v = next;
                    fuel -= 1;
                }
                _ => break,
            }
        }
        v
    };
    for inst in &mut f.insts {
        inst.op.for_each_value_mut(|v| {
            let r = resolve(*v);
            if r != *v {
                *v = r;
            }
        });
    }
    let dead: HashSet<InstId> = replace.keys().copied().collect();
    crate::utils::remove_insts(f, &dead);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    fn run_gvn(src: &str, input: Vec<i32>) -> String {
        let mut m = parse_module(src).unwrap();
        twill_ir::layout::assign_global_addrs(&mut m);
        let (before, _, _) = twill_ir::interp::run_main(&m, input.clone(), 1_000_000).unwrap();
        for func in &mut m.funcs {
            gvn(func);
        }
        crate::utils::assert_valid_ssa(&m);
        let (after, _, _) = twill_ir::interp::run_main(&m, input, 1_000_000).unwrap();
        assert_eq!(before, after);
        print_module(&m)
    }

    #[test]
    fn dedupes_identical_expressions() {
        let out = run_gvn(
            "func @main() -> i32 {\nbb0:\n  %0 = in\n  %1 = add i32 %0, 5:i32\n  %2 = add i32 %0, 5:i32\n  %3 = mul i32 %1, %2\n  out %3\n  ret %3\n}\n",
            vec![2],
        );
        assert_eq!(out.matches("add").count(), 1, "{out}");
    }

    #[test]
    fn commutative_canonicalization() {
        let out = run_gvn(
            "func @main() -> i32 {\nbb0:\n  %0 = in\n  %1 = in\n  %2 = add i32 %0, %1\n  %3 = add i32 %1, %0\n  %4 = sub i32 %2, %3\n  out %4\n  ret %4\n}\n",
            vec![3, 4],
        );
        assert_eq!(out.matches("add").count(), 1, "{out}");
    }

    #[test]
    fn dominating_def_reused_across_blocks() {
        let out = run_gvn(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %1 = mul i32 %0, 3:i32
  %c = cmp sgt %0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %2 = mul i32 %0, 3:i32
  out %2
  ret %2
bb2:
  out %1
  ret %1
}
"#,
            vec![5],
        );
        assert_eq!(out.matches("mul").count(), 1, "{out}");
    }

    #[test]
    fn sibling_blocks_do_not_share() {
        // Expressions in sibling branches must not replace each other.
        let out = run_gvn(
            r#"
func @main() -> i32 {
bb0:
  %0 = in
  %c = cmp sgt %0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %1 = add i32 %0, 7:i32
  out %1
  ret %1
bb2:
  %2 = add i32 %0, 7:i32
  out %2
  ret %2
}
"#,
            vec![-3],
        );
        assert_eq!(out.matches("add").count(), 2, "{out}");
    }

    #[test]
    fn redundant_load_in_block_removed() {
        let out = run_gvn(
            r#"
global @g size=4 []
func @main() -> i32 {
bb0:
  %0 = gaddr @g
  store i32 42:i32, %0
  %1 = load i32 %0
  %2 = load i32 %0
  %3 = add i32 %1, %2
  out %3
  ret %3
}
"#,
            vec![],
        );
        // Both loads forwarded from the store.
        assert_eq!(out.matches("load").count(), 0, "{out}");
    }

    #[test]
    fn load_not_forwarded_across_aliasing_store() {
        let out = run_gvn(
            r#"
global @g size=4 []
func @main() -> i32 {
bb0:
  %0 = gaddr @g
  store i32 1:i32, %0
  %1 = load i32 %0
  store i32 2:i32, %0
  %2 = load i32 %0
  %3 = add i32 %1, %2
  out %3
  ret %3
}
"#,
            vec![],
        );
        // Loads forwarded from their respective stores: 1 + 2 = 3.
        assert!(out.contains("out"), "{out}");
    }

    #[test]
    fn call_invalidates_loads() {
        let out = run_gvn(
            r#"
global @g size=4 []
func @bump() -> void {
bb0:
  %0 = gaddr @g
  %1 = load i32 %0
  %2 = add i32 %1, 1:i32
  store i32 %2, %0
  ret
}
func @main() -> i32 {
bb0:
  %0 = gaddr @g
  %1 = load i32 %0
  call void @bump()
  %2 = load i32 %0
  %3 = add i32 %1, %2
  out %3
  ret %3
}
"#,
            vec![],
        );
        assert_eq!(out.split("func @main").nth(1).unwrap().matches("load").count(), 2, "{out}");
    }
}
