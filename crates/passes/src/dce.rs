//! Dead code elimination ("adce"-grade, minus control-dependence pruning).
//!
//! Seeds liveness from side-effecting instructions and terminators, then
//! marks the transitive operand closure live; everything else is removed.
//! Pure calls (per the interprocedural effect analysis) whose results are
//! unused are removed too. Self-referencing phi cycles with no live external
//! user are eliminated as a unit.

use crate::callgraph::Effects;
use std::collections::HashSet;
use twill_ir::{Function, InstId, Module, Op, Value};

/// Remove dead instructions from `f`. `effects` is the module-wide function
/// effect table (pass `None` to treat every call as side-effecting).
pub fn dce_function(f: &mut Function, effects: Option<&[Effects]>) -> bool {
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();

    for (_, iid) in f.inst_ids_in_layout() {
        let op = &f.inst(iid).op;
        let rooted = match op {
            Op::Call(callee, _) => match effects {
                Some(fx) => !fx[callee.index()].is_pure(),
                None => true,
            },
            _ => op.is_terminator() || op.has_side_effect(),
        };
        if rooted && live.insert(iid) {
            work.push(iid);
        }
    }
    while let Some(iid) = work.pop() {
        f.inst(iid).op.for_each_value(|v| {
            if let Value::Inst(d) = v {
                if live.insert(d) {
                    work.push(d);
                }
            }
        });
    }

    let mut dead: HashSet<InstId> = HashSet::new();
    for (_, iid) in f.inst_ids_in_layout() {
        if !live.contains(&iid) {
            dead.insert(iid);
        }
    }
    let changed = !dead.is_empty();
    crate::utils::remove_insts(f, &dead);
    changed
}

/// Module-wide DCE with interprocedural purity.
pub fn dce_module(m: &mut Module) -> bool {
    let fx = crate::callgraph::function_effects(m);
    let mut changed = false;
    for i in 0..m.funcs.len() {
        changed |= dce_function(&mut m.funcs[i], Some(&fx));
    }
    changed
}

/// Remove whole functions that are unreachable from `main` ("deadargelim"
/// companion; keeps the module minimal after inlining).
pub fn remove_dead_functions(m: &mut Module) -> bool {
    let Some(main) = m.find_func("main") else { return false };
    let cg = crate::callgraph::CallGraph::new(m);
    let mut keep = vec![false; m.funcs.len()];
    let mut stack = vec![main];
    keep[main.index()] = true;
    // Address-taken functions may be reached through pointers: roots.
    for f in &m.funcs {
        for (_, iid) in f.inst_ids_in_layout() {
            if let twill_ir::Op::FuncAddr(t) = &f.inst(iid).op {
                if !keep[t.index()] {
                    keep[t.index()] = true;
                    stack.push(*t);
                }
            }
        }
    }
    while let Some(f) = stack.pop() {
        for &c in &cg.callees[f.index()] {
            if !keep[c.index()] {
                keep[c.index()] = true;
                stack.push(c);
            }
        }
    }
    if keep.iter().all(|&k| k) {
        return false;
    }
    // Renumber FuncIds.
    let mut remap = vec![None; m.funcs.len()];
    let mut next = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = Some(twill_ir::FuncId(next));
            next += 1;
        }
    }
    let old_funcs = std::mem::take(&mut m.funcs);
    for (i, func) in old_funcs.into_iter().enumerate() {
        if keep[i] {
            m.funcs.push(func);
        }
    }
    for f in &mut m.funcs {
        // Only live instructions: dead arena slots may hold stale calls.
        let live: Vec<twill_ir::InstId> =
            f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
        for iid in live {
            match &mut f.inst_mut(iid).op {
                Op::Call(callee, _) => {
                    *callee = remap[callee.index()].expect("call to dead function survived");
                }
                Op::FuncAddr(t) => {
                    *t = remap[t.index()].expect("address of dead function survived");
                }
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;
    use twill_ir::printer::print_module;

    #[test]
    fn removes_unused_pure_chain() {
        let src = "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  %1 = mul i32 %0, %0\n  %2 = add i32 %a0, 2:i32\n  ret %2\n}\n";
        let mut m = parse_module(src).unwrap();
        assert!(dce_function(&mut m.funcs[0], None));
        let out = print_module(&m);
        assert!(!out.contains("mul"), "{out}");
        assert!(out.contains("2:i32"), "{out}");
        crate::utils::assert_valid_ssa(&m);
    }

    #[test]
    fn keeps_stores_and_io() {
        let src = "global @g size=4 []\nfunc @f() -> void {\nbb0:\n  %0 = gaddr @g\n  store i32 1:i32, %0\n  out 5:i32\n  ret\n}\n";
        let mut m = parse_module(src).unwrap();
        dce_function(&mut m.funcs[0], None);
        let out = print_module(&m);
        assert!(out.contains("store"));
        assert!(out.contains("out 5:i32"));
    }

    #[test]
    fn removes_dead_phi_cycle() {
        // %0/%1 feed each other but nothing live uses them.
        let src = r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb1: %1]
  %1 = add i32 %0, 1:i32
  %2 = phi i32 [bb0: 0:i32], [bb1: %3]
  %3 = add i32 %2, 2:i32
  %c = cmp slt %3, %a0
  condbr %c, bb1, bb2
bb2:
  ret %3
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(dce_function(&mut m.funcs[0], None));
        let out = print_module(&m);
        // The %0/%1 cycle is dead; the %2/%3 cycle feeds the condition.
        assert_eq!(out.matches("phi").count(), 1, "{out}");
        crate::utils::assert_valid_ssa(&m);
    }

    #[test]
    fn pure_call_removed_impure_kept() {
        let src = r#"
func @pure(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  ret %0
}
func @impure(i32) -> i32 {
bb0:
  out %a0
  ret %a0
}
func @main() -> i32 {
bb0:
  %0 = call i32 @pure(1:i32)
  %1 = call i32 @impure(2:i32)
  ret 0:i32
}
"#;
        let mut m = parse_module(src).unwrap();
        dce_module(&mut m);
        let out = print_module(&m);
        assert!(!out.contains("call i32 @pure"), "{out}");
        assert!(out.contains("call i32 @impure"), "{out}");
    }

    #[test]
    fn dead_functions_removed_and_calls_renumbered() {
        let src = r#"
func @dead() -> void {
bb0:
  ret
}
func @used() -> void {
bb0:
  ret
}
func @main() -> void {
bb0:
  call void @used()
  ret
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(remove_dead_functions(&mut m));
        assert_eq!(m.funcs.len(), 2);
        assert!(m.find_func("dead").is_none());
        twill_ir::verifier::assert_valid(&m);
        // The call still targets @used after renumbering.
        let (out, _, _) = {
            let mut m2 = m.clone();
            twill_ir::layout::assign_global_addrs(&mut m2);
            twill_ir::interp::run_main(&m2, vec![], 1000).unwrap()
        };
        assert!(out.is_empty());
    }
}
