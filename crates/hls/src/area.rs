//! FPGA area model: LUT/DSP/BRAM estimation for scheduled modules,
//! calibrated so pure-HW translations of the CHStone kernels land in the
//! 2k–31k LUT range of thesis Table 6.2.

use crate::schedule::{FuncSchedule, ModuleSchedule};
use twill_ir::cost;
use twill_ir::Module;

/// Area of one function or module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaReport {
    pub luts: u32,
    pub dsps: u32,
    pub brams: u32,
}

impl AreaReport {
    pub fn add(&mut self, o: AreaReport) {
        self.luts += o.luts;
        self.dsps += o.dsps;
        self.brams += o.brams;
    }
}

/// Per-shared-unit LUT costs (32-bit datapath).
const LUTS_ADD: u32 = 32;
const LUTS_LOGIC: u32 = 32;
const LUTS_SHIFT: u32 = 96;
const LUTS_MUL: u32 = 40; // plus 1 DSP
const LUTS_DIV: u32 = 380; // serial divider
const LUTS_CMP: u32 = 16;
const LUTS_MEMPORT: u32 = 8;
const LUTS_QUEUEPORT: u32 = 6;
/// FSM one-hot state + next-state logic per state.
const LUTS_PER_STATE: u32 = 3;
/// Per cross-state live value: input mux into the shared datapath.
const LUTS_PER_LIVE: u32 = 6;
/// Per function: control glue (start/done handshake, return mux).
const LUTS_FUNC_GLUE: u32 = 24;

/// Area of a scheduled function.
pub fn estimate_function_area(fs: &FuncSchedule) -> AreaReport {
    let u = fs.peak_units;
    let luts = u.add * LUTS_ADD
        + u.logic * LUTS_LOGIC
        + u.shift * LUTS_SHIFT
        + u.mul * LUTS_MUL
        + u.div * LUTS_DIV
        + u.cmp * LUTS_CMP
        + u.mem.min(1) * LUTS_MEMPORT
        + u.queue.min(1) * LUTS_QUEUEPORT
        + fs.states * LUTS_PER_STATE
        + fs.live_values * LUTS_PER_LIVE
        + LUTS_FUNC_GLUE;
    AreaReport { luts, dsps: u.mul, brams: 0 }
}

/// Area of every function in a scheduled module (HW-thread logic only;
/// runtime-system area is accounted separately via [`runtime_area`]).
pub fn estimate_module_area(m: &Module, s: &ModuleSchedule) -> AreaReport {
    let mut total = AreaReport::default();
    for fs in &s.funcs {
        total.add(estimate_function_area(fs));
    }
    // LegUp-style BRAM use: one block per 2 KiB of global data when the
    // design owns its memories (the pure-HW flow); Twill's hybrid flow
    // stores data in the processor's memory instead (thesis §6.2).
    let global_bytes: u32 = m.globals.iter().map(|g| g.size).sum();
    total.brams += global_bytes.div_ceil(2048);
    total
}

/// Twill runtime-system area from the primitive counts (thesis §6.2
/// constants, re-exported from `twill_ir::cost`).
pub fn runtime_area(m: &Module, hw_threads: u32, cpus: u32) -> AreaReport {
    let mut luts = 0;
    let mut dsps = 0;
    for q in &m.queues {
        luts += cost::queue_luts(q.width, q.depth);
        dsps += cost::DSPS_QUEUE;
    }
    luts += m.sems.len() as u32 * cost::LUTS_SEMAPHORE;
    luts += hw_threads * cost::LUTS_HW_INTERFACE;
    luts += cost::LUTS_PROC_INTERFACE;
    luts += cost::LUTS_SCHEDULER;
    dsps += cost::DSPS_SCHEDULER;
    luts += 2 * cost::LUTS_BUS_ARBITER;
    let brams = cpus * cost::BRAMS_MICROBLAZE;
    let _ = cpus;
    AreaReport { luts, dsps, brams }
}

/// Per-counter LUT cost of the opt-in `twill_perf` subsystem: a 64-bit
/// increment chain plus the enable gate.
const LUTS_PERF_COUNTER64: u32 = 36;
/// Per-queue high-water tracker: 32-bit compare + register.
const LUTS_PERF_HIGH_WATER: u32 = 40;
/// Readback word mux, per mapped 32-bit word.
const LUTS_PERF_WORD_MUX: u32 = 2;
/// Fixed decode/handshake glue plus the FSM state taps.
const LUTS_PERF_GLUE: u32 = 48;

/// Instrumentation overhead of the `twill_perf` counter register file
/// (DESIGN.md §14), charged only when a design is emitted with hardware
/// counters enabled so `fits_device` stays honest about the instrumented
/// bitstream. Counter and word populations come from the register-map
/// layout constants — the same source the emitted Verilog is generated
/// from.
pub fn perf_counter_area(threads: u32, queues: u32) -> AreaReport {
    use twill_obs::regmap::{
        HEADER_WORDS, QUEUE_COUNTERS, QUEUE_WORDS, THREAD_CLASSES, THREAD_WORDS,
    };
    let counters = 1 + threads * THREAD_CLASSES.len() as u32 + queues * QUEUE_COUNTERS.len() as u32;
    let words = HEADER_WORDS + threads * THREAD_WORDS + queues * QUEUE_WORDS;
    AreaReport {
        luts: counters * LUTS_PERF_COUNTER64
            + queues * LUTS_PERF_HIGH_WATER
            + words * LUTS_PERF_WORD_MUX
            + LUTS_PERF_GLUE,
        dsps: 0,
        brams: 0,
    }
}

/// The Microblaze soft core itself (Table 6.2's final column delta).
pub fn microblaze_area() -> AreaReport {
    AreaReport { luts: cost::LUTS_MICROBLAZE, dsps: 3, brams: cost::BRAMS_MICROBLAZE }
}

/// Device capacity check (Virtex-5 LX110T, thesis board).
pub fn fits_device(total: &AreaReport) -> bool {
    total.luts <= cost::DEVICE_LUTS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_module, HlsOptions};

    #[test]
    fn chstone_pure_hw_in_table_6_2_range() {
        // Table 6.2 LegUp column spans 2101..31084 LUTs.
        for b in chstone::all() {
            let m = chstone::compile_and_prepare(&b);
            let s = schedule_module(&m, &HlsOptions::default());
            let a = estimate_module_area(&m, &s);
            assert!(
                a.luts > 500 && a.luts < 80_000,
                "{}: {} LUTs way out of calibration range",
                b.name,
                a.luts
            );
        }
    }

    #[test]
    fn runtime_area_uses_thesis_constants() {
        let mut m = twill_ir::Module::new("t");
        for _ in 0..10 {
            m.add_queue(twill_ir::QueueDecl { width: twill_ir::Ty::I32, depth: 8 });
        }
        m.add_sem(twill_ir::SemDecl { max: 1, initial: 1 });
        let a = runtime_area(&m, 3, 1);
        // 10 queues * 65 + 70 + 3*44 + 24 + 98 + 2*15
        assert_eq!(a.luts, 650 + 70 + 132 + 24 + 98 + 30);
        assert_eq!(a.dsps, 10 + 2);
        assert_eq!(a.brams, 16);
    }

    #[test]
    fn more_states_more_area() {
        let src_small = "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  ret %0\n}\n";
        let src_big = r#"func @f(i32) -> i32 {
bb0:
  %0 = mul i32 %a0, 3:i32
  %1 = sdiv i32 %0, 7:i32
  %2 = mul i32 %1, %1
  %3 = sdiv i32 %2, 5:i32
  ret %3
}
"#;
        let ms = twill_ir::parser::parse_module(src_small).unwrap();
        let mb = twill_ir::parser::parse_module(src_big).unwrap();
        let a_small = estimate_module_area(&ms, &schedule_module(&ms, &HlsOptions::default()));
        let a_big = estimate_module_area(&mb, &schedule_module(&mb, &HlsOptions::default()));
        assert!(a_big.luts > a_small.luts);
        assert!(a_big.dsps >= 1);
    }

    #[test]
    fn perf_counter_area_scales_with_population() {
        let none = perf_counter_area(0, 0);
        // Cycle counter + glue + header mux words even for an empty map.
        assert_eq!(none.luts, 36 + 6 * 2 + 48);
        assert_eq!((none.dsps, none.brams), (0, 0));
        let small = perf_counter_area(2, 1);
        let big = perf_counter_area(3, 8);
        assert!(none.luts < small.luts && small.luts < big.luts);
        // One extra thread costs 7 counters + 15 mux words.
        assert_eq!(perf_counter_area(3, 1).luts - small.luts, 7 * 36 + 15 * 2);
        // One extra queue costs 4 counters + a high-water tracker + 10 words.
        assert_eq!(perf_counter_area(2, 2).luts - small.luts, 4 * 36 + 40 + 10 * 2);
    }

    #[test]
    fn device_capacity_check() {
        assert!(fits_device(&AreaReport { luts: 50_000, dsps: 0, brams: 0 }));
        assert!(!fits_device(&AreaReport { luts: 70_000, dsps: 0, brams: 0 }));
    }
}
