//! # twill-hls
//!
//! The LegUp stage of the thesis' tool flow, re-implemented as a model:
//!
//! * **scheduling** — per-basic-block resource-constrained list scheduling
//!   with operation chaining (multiple dependent combinational ops per
//!   100 MHz cycle) and iterative-modulo-style loop pipelining for
//!   innermost single-block loops (LegUp's ILP features per thesis §3.1.2),
//! * **area model** — LUT/DSP/BRAM estimation with functional-unit sharing,
//!   calibrated to the magnitudes of thesis Table 6.2,
//! * **power model** — static + PLL + activity-weighted dynamic power
//!   reproducing the ordering of thesis Fig 6.1,
//! * **Verilog emission** — a textual artifact per hardware thread with the
//!   Twill runtime interface signals of thesis §5.4.
//!
//! The cycle-accurate *execution* of schedules happens in `twill-rt`, which
//! walks [`BlockSchedule`]s against the simulated buses.

pub mod area;
pub mod power;
pub mod schedule;
pub mod verilog;

pub use area::{estimate_module_area, perf_counter_area, AreaReport};
pub use power::{power_mw, PowerConfig};
pub use schedule::{
    schedule_function, schedule_module, schedule_module_threads, BlockSchedule, FuncSchedule,
    HlsOptions, ModuleSchedule,
};
pub use verilog::{emit_module, emit_module_with, EmitOptions};
