//! Resource-constrained list scheduling with chaining and loop pipelining.

use std::collections::HashMap;
use twill_ir::cost::{hw_cost, CHAIN_BUDGET};
use twill_ir::{BlockId, FuncId, Function, InstId, Intr, Module, Op, Value};
use twill_passes::domtree::DomTree;
use twill_passes::loops::LoopInfo;

#[derive(Debug, Clone, Copy)]
pub struct HlsOptions {
    /// Pack chains of dependent combinational ops into one cycle.
    pub chaining: bool,
    /// Enable iterative-modulo-style pipelining of innermost single-block
    /// loops (LegUp's modulo scheduler, thesis §3.1.2).
    pub loop_pipelining: bool,
    /// Concurrent DSP multipliers available per function.
    pub multipliers: u32,
    /// Serial dividers per function (LegUp was "set up to use a simple
    /// serial divider", thesis §6.4).
    pub dividers: u32,
}

impl Default for HlsOptions {
    fn default() -> Self {
        HlsOptions { chaining: true, loop_pipelining: true, multipliers: 4, dividers: 1 }
    }
}

/// One scheduled basic block.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    /// Instructions in issue order with their start state (cycle offset).
    pub ops: Vec<(InstId, u32)>,
    /// Cycles to traverse the block with no stalls (≥ 1).
    pub depth: u32,
    /// Initiation interval when this block is a pipelined loop body.
    pub ii: Option<u32>,
}

#[derive(Debug, Clone)]
pub struct FuncSchedule {
    pub func: FuncId,
    pub blocks: Vec<BlockSchedule>,
    /// Total FSM states (Σ block depths) — drives the area model.
    pub states: u32,
    /// Peak concurrent use per functional-unit class (sharing estimate).
    pub peak_units: UnitUsage,
    /// Number of values live across a state boundary (register estimate).
    pub live_values: u32,
}

/// Functional-unit classes tracked for sharing/area.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitUsage {
    pub add: u32,
    pub logic: u32,
    pub shift: u32,
    pub mul: u32,
    pub div: u32,
    pub cmp: u32,
    pub mem: u32,
    pub queue: u32,
}

/// Schedules for all functions of a module.
#[derive(Debug, Clone)]
pub struct ModuleSchedule {
    pub funcs: Vec<FuncSchedule>,
    pub opts: HlsOptions,
}

/// Classify an op for resource accounting. Returns None for free ops.
fn unit_class(op: &Op) -> Option<&'static str> {
    use twill_ir::BinOp::*;
    match op {
        Op::Bin(b, _, _) => Some(match b {
            Add | Sub => "add",
            And | Or | Xor => "logic",
            Shl | AShr | LShr => "shift",
            Mul => "mul",
            SDiv | UDiv | SRem | URem => "div",
        }),
        Op::Cmp(..) => Some("cmp"),
        Op::Select(..) => Some("logic"),
        Op::Gep(..) => Some("add"),
        Op::Load(_) | Op::Store(..) => Some("mem"),
        Op::Intrin(..) => Some("queue"),
        _ => None,
    }
}

/// Is this op effectful (must issue in program order)?
fn is_effect(op: &Op) -> bool {
    matches!(op, Op::Load(_) | Op::Store(..) | Op::Intrin(..) | Op::Call(..) | Op::CallIndirect(..))
}

/// Schedule one basic block: ASAP with chaining, serialized effectful ops
/// (one runtime/memory issue per cycle, fully serialized bus), and limited
/// mul/div units.
fn schedule_block(
    m: &Module,
    f: &Function,
    block: BlockId,
    opts: &HlsOptions,
    usage: &mut HashMap<(&'static str, u32), u32>,
) -> BlockSchedule {
    let insts = &f.block(block).insts;
    // finish[i] = cycle *after* which the result is usable; chain[i] =
    // accumulated combinational delay within its finish cycle.
    let mut start: HashMap<InstId, u32> = HashMap::new();
    let mut finish: HashMap<InstId, u32> = HashMap::new();
    let mut chain: HashMap<InstId, u32> = HashMap::new();
    let mut ops: Vec<(InstId, u32)> = Vec::new();

    let mut last_effect_issue: i64 = -1;
    let mut last_mem_free: u32 = 0; // bus serialization point
    let mut div_free: u32 = 0; // serial divider availability
    let mut mul_busy: HashMap<u32, u32> = HashMap::new(); // cycle -> count
    let mut depth: u32 = 1;

    for &iid in insts.iter() {
        let inst = f.inst(iid);
        if inst.op.is_phi() {
            // Resolved as muxes on block entry: available at cycle 0.
            start.insert(iid, 0);
            finish.insert(iid, 0);
            chain.insert(iid, 0);
            ops.push((iid, 0));
            continue;
        }
        if inst.op.is_terminator() {
            // Scheduled at the block's final state below.
            continue;
        }
        let mut c = hw_cost(&inst.op);
        // Loads from constant globals are per-thread ROMs: registered
        // 1-cycle reads off the shared memory bus.
        let rom = matches!(&inst.op, Op::Load(a) if m.const_global_base(f, *a).is_some());
        if rom {
            c.latency = 1;
        }

        // Earliest cycle from operands.
        let mut ready: u32 = 0;
        let mut ready_chain: u32 = 0;
        inst.op.for_each_value(|v| {
            if let Value::Inst(d) = v {
                if let Some(&fin) = finish.get(&d) {
                    if fin > ready {
                        ready = fin;
                        ready_chain = chain.get(&d).copied().unwrap_or(0);
                    } else if fin == ready {
                        ready_chain = ready_chain.max(chain.get(&d).copied().unwrap_or(0));
                    }
                }
            }
        });

        let (s, fin, ch) = if c.latency == 0 {
            // Combinational: try to chain into `ready` cycle.
            if opts.chaining && ready_chain + c.delay <= CHAIN_BUDGET {
                (ready, ready, ready_chain + c.delay)
            } else if opts.chaining {
                (ready + 1, ready + 1, c.delay)
            } else {
                // No chaining: each op takes its own state.
                (ready + 1, ready + 1, c.delay)
            }
        } else {
            let mut s = if ready_chain > 0 { ready + 1 } else { ready.max(1) };
            // Resource constraints: effectful ops issue in order, one per
            // cycle (the bus accepts one message per cycle); loads are
            // pipelined — the 2-cycle latency spaces their *dependents*,
            // not the next issue.
            if is_effect(&inst.op) && !rom {
                s = s.max((last_effect_issue + 1) as u32);
            }
            match &inst.op {
                Op::Bin(
                    twill_ir::BinOp::SDiv
                    | twill_ir::BinOp::UDiv
                    | twill_ir::BinOp::SRem
                    | twill_ir::BinOp::URem,
                    _,
                    _,
                ) => {
                    s = s.max(div_free);
                    div_free = s + c.latency; // serial divider busy
                }
                Op::Bin(twill_ir::BinOp::Mul, _, _) => {
                    // Pipelined DSPs: limited issue width per cycle.
                    let mut cyc = s;
                    loop {
                        let n = mul_busy.entry(cyc).or_insert(0);
                        if *n < opts.multipliers {
                            *n += 1;
                            break;
                        }
                        cyc += 1;
                    }
                    s = cyc;
                }
                _ => {}
            }
            if is_effect(&inst.op) && !rom {
                last_effect_issue = s as i64;
                last_mem_free = last_mem_free.max(s + c.latency);
            }
            (s, s + c.latency, 0)
        };
        start.insert(iid, s);
        finish.insert(iid, fin);
        chain.insert(iid, ch);
        ops.push((iid, s));
        depth = depth.max(fin.max(s + 1));
    }

    // Terminator occupies the final state.
    if let Some(term) = f.block(block).terminator() {
        if f.inst(term).op.is_terminator() {
            ops.push((term, depth.saturating_sub(1)));
        }
    }

    // Record per-state unit usage for the sharing estimate.
    for &(iid, s) in &ops {
        if let Some(class) = unit_class(&f.inst(iid).op) {
            *usage.entry((class, s)).or_insert(0) += 1;
        }
    }

    BlockSchedule { ops, depth: depth.max(1), ii: None }
}

/// Loop pipelining: for an innermost loop whose body is a single block,
/// compute the initiation interval II = max(RecMII, ResMII).
fn compute_ii(f: &Function, block: BlockId, sched: &BlockSchedule) -> u32 {
    // ResMII: serialized resources — memory/queue ops share one bus port;
    // each divider occupies HW_DIV_LATENCY cycles.
    let mut mem_ops = 0u32;
    let mut div_cycles = 0u32;
    for &iid in &f.block(block).insts {
        match &f.inst(iid).op {
            Op::Load(_) | Op::Store(..) | Op::Intrin(..) => mem_ops += 1,
            Op::Bin(b, _, _) if b.can_trap() => {
                div_cycles += twill_ir::cost::HW_DIV_LATENCY;
            }
            _ => {}
        }
    }
    // Effectful ops need ~latency cycles each on the serialized bus.
    let res_mii = (mem_ops * 2).max(div_cycles).max(1);

    // RecMII: longest dataflow cycle through a loop phi, measured as the
    // path cost (in chain units: latency*BUDGET + combinational delay)
    // from the phi to its latch operand.
    let _ = sched;
    let mut rec_mii = 1u32;
    for &iid in &f.block(block).insts {
        if let Op::Phi(incoming) = &f.inst(iid).op {
            for (pred, v) in incoming {
                if *pred == block {
                    if let Value::Inst(latch) = v {
                        let units = longest_path_units(f, block, iid, *latch);
                        rec_mii = rec_mii.max(units.div_ceil(CHAIN_BUDGET).max(1));
                    }
                }
            }
        }
    }
    res_mii.max(rec_mii)
}

/// Longest DFG path cost (chain units) from `phi` to `target` within one
/// block; 0 if `target` doesn't depend on `phi`.
fn longest_path_units(f: &Function, block: BlockId, phi: InstId, target: InstId) -> u32 {
    // Memoized DFS over block-local operands.
    fn walk(
        f: &Function,
        block: BlockId,
        phi: InstId,
        node: InstId,
        memo: &mut HashMap<InstId, Option<u32>>,
        owner: &[Option<BlockId>],
    ) -> Option<u32> {
        if node == phi {
            return Some(0);
        }
        if let Some(r) = memo.get(&node) {
            return *r;
        }
        memo.insert(node, None); // cycle guard
        let mut best: Option<u32> = None;
        f.inst(node).op.for_each_value(|v| {
            if let Value::Inst(d) = v {
                if owner.get(d.index()).copied().flatten() == Some(block) {
                    if let Some(sub) = walk(f, block, phi, d, memo, owner) {
                        best = Some(best.unwrap_or(0).max(sub));
                    }
                }
            }
        });
        let r = best.map(|b| {
            let c = hw_cost(&f.inst(node).op);
            b + c.latency * CHAIN_BUDGET + c.delay
        });
        memo.insert(node, r);
        r
    }
    let owner = f.inst_blocks();
    let mut memo = HashMap::new();
    walk(f, block, phi, target, &mut memo, &owner).unwrap_or(0)
}

/// Schedule one function.
pub fn schedule_function(
    m: &Module,
    f: &Function,
    func_id: FuncId,
    opts: &HlsOptions,
) -> FuncSchedule {
    let mut usage: HashMap<(&'static str, u32), u32> = HashMap::new();
    let mut blocks: Vec<BlockSchedule> =
        f.block_ids().map(|b| schedule_block(m, f, b, opts, &mut usage)).collect();

    // Loop pipelining for innermost single-block loops.
    if opts.loop_pipelining {
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        for l in 0..li.loops.len() {
            let lp = &li.loops[l];
            if lp.children.is_empty() && lp.blocks.len() == 1 {
                let b = lp.header;
                let ii = compute_ii(f, b, &blocks[b.index()]);
                if ii < blocks[b.index()].depth {
                    blocks[b.index()].ii = Some(ii);
                }
            }
        }
    }

    // Peak concurrent units across all states (what sharing must provide).
    let mut peak = UnitUsage::default();
    for ((class, _), &n) in &usage {
        let slot = match *class {
            "add" => &mut peak.add,
            "logic" => &mut peak.logic,
            "shift" => &mut peak.shift,
            "mul" => &mut peak.mul,
            "div" => &mut peak.div,
            "cmp" => &mut peak.cmp,
            "mem" => &mut peak.mem,
            "queue" => &mut peak.queue,
            _ => continue,
        };
        *slot = (*slot).max(n);
    }

    // Live values across states: results used in a later cycle or block.
    let sched_start: HashMap<InstId, u32> =
        blocks.iter().flat_map(|b| b.ops.iter().copied()).collect();
    let owner = f.inst_blocks();
    let mut live = 0u32;
    for (b, iid) in f.inst_ids_in_layout() {
        let inst = f.inst(iid);
        if inst.ty == twill_ir::Ty::Void {
            continue;
        }
        let my_start = sched_start.get(&iid).copied().unwrap_or(0);
        let mut crosses = false;
        // Does any user sit in a later state or another block?
        for (ub, uid) in f.inst_ids_in_layout() {
            let mut uses = false;
            f.inst(uid).op.for_each_value(|v| {
                if v == Value::Inst(iid) {
                    uses = true;
                }
            });
            if uses && (ub != b || sched_start.get(&uid).copied().unwrap_or(0) > my_start) {
                crosses = true;
                break;
            }
        }
        let _ = owner[iid.index()];
        if crosses {
            live += 1;
        }
    }

    let states = blocks.iter().map(|b| b.depth).sum();
    FuncSchedule { func: func_id, blocks, states, peak_units: peak, live_values: live }
}

/// Schedule every function of a module, fanning out across worker threads
/// (each function's schedule is independent of every other's).
pub fn schedule_module(m: &Module, opts: &HlsOptions) -> ModuleSchedule {
    schedule_module_threads(m, opts, twill_passes::par::default_threads())
}

/// [`schedule_module`] with an explicit fan-out width. `threads == 1` is
/// the reference serial scheduler; any other width must produce an
/// identical schedule (and therefore byte-identical Verilog) because
/// results are collected in function-table order and `schedule_function`
/// reads only its own function.
pub fn schedule_module_threads(m: &Module, opts: &HlsOptions, threads: usize) -> ModuleSchedule {
    let ids: Vec<FuncId> = m.func_ids().collect();
    let funcs = twill_passes::par::par_map(&ids, threads, |_, &fid| {
        schedule_function(m, m.func(fid), fid, opts)
    });
    ModuleSchedule { funcs, opts: *opts }
}

impl ModuleSchedule {
    pub fn for_func(&self, f: FuncId) -> &FuncSchedule {
        &self.funcs[f.index()]
    }

    /// Sum of block depths, an ILP quality metric used in tests/benches.
    pub fn total_states(&self) -> u32 {
        self.funcs.iter().map(|f| f.states).sum()
    }
}

/// Estimated cycles for one pass through a block (no stalls, no pipelining).
pub fn block_latency(s: &BlockSchedule) -> u32 {
    s.depth
}

/// Does the intrinsic block the FSM until an external response?
pub fn is_blocking_intrinsic(i: &Intr) -> bool {
    matches!(i, Intr::Dequeue(_) | Intr::Enqueue(_) | Intr::SemLower(_) | Intr::In | Intr::Out)
        || matches!(i, Intr::SemRaise(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::parser::parse_module;

    fn sched(src: &str, opts: &HlsOptions) -> (twill_ir::Module, ModuleSchedule) {
        let m = parse_module(src).unwrap();
        let s = schedule_module(&m, opts);
        (m, s)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // Many small functions so the fan-out actually chunks.
        let mut src = String::new();
        for i in 0..9 {
            src.push_str(&format!(
                "func @f{i}(i32) -> i32 {{\nbb0:\n  %0 = add i32 %a0, {i}:i32\n  %1 = mul i32 %0, %a0\n  %2 = xor i32 %1, %0\n  ret %2\n}}\n"
            ));
        }
        let m = parse_module(&src).unwrap();
        let serial = schedule_module_threads(&m, &HlsOptions::default(), 1);
        let reference = format!("{serial:?}");
        for threads in [2usize, 4, 16] {
            let par = schedule_module_threads(&m, &HlsOptions::default(), threads);
            assert_eq!(format!("{par:?}"), reference, "schedule diverged at {threads} threads");
        }
    }

    #[test]
    fn chaining_packs_simple_ops() {
        let src = "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  %1 = xor i32 %0, 7:i32\n  %2 = add i32 %1, %0\n  ret %2\n}\n";
        let (_, with) = sched(src, &HlsOptions::default());
        let (_, without) = sched(src, &HlsOptions { chaining: false, ..Default::default() });
        assert!(with.total_states() < without.total_states());
        // All three ALU ops chain into few cycles.
        assert!(with.funcs[0].blocks[0].depth <= 2, "{:?}", with.funcs[0].blocks[0]);
    }

    #[test]
    fn chain_budget_forces_new_cycle() {
        // A long dependent chain of adds must span multiple cycles.
        let src = r#"func @f(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  %1 = add i32 %0, 1:i32
  %2 = add i32 %1, 1:i32
  %3 = add i32 %2, 1:i32
  %4 = add i32 %3, 1:i32
  %5 = add i32 %4, 1:i32
  ret %5
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        let d = s.funcs[0].blocks[0].depth;
        assert!(d >= 3, "six dependent adds can't fit one cycle: depth={d}");
    }

    #[test]
    fn independent_ops_schedule_in_parallel() {
        let src = r#"func @f(i32, i32, i32, i32) -> i32 {
bb0:
  %0 = add i32 %a0, %a1
  %1 = add i32 %a2, %a3
  %2 = xor i32 %a0, %a2
  %3 = add i32 %0, %1
  %4 = add i32 %3, %2
  ret %4
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        // ILP: parallel adds share the first state.
        let b = &s.funcs[0].blocks[0];
        let starts: Vec<u32> = b.ops.iter().map(|(_, c)| *c).collect();
        assert!(starts.iter().filter(|&&c| c == 0).count() >= 3, "{starts:?}");
    }

    #[test]
    fn memory_ops_serialize() {
        let src = r#"global @g size=16 []
func @f() -> i32 {
bb0:
  %p = gaddr @g
  %0 = load i32 %p
  %q = gep %p, 1:i32, 4
  %1 = load i32 %q
  %2 = add i32 %0, %1
  ret %2
}
"#;
        let (m, s) = sched(src, &HlsOptions::default());
        let f = &m.funcs[0];
        let b = &s.funcs[0].blocks[0];
        let start: HashMap<InstId, u32> = b.ops.iter().copied().collect();
        let loads: Vec<InstId> = f
            .inst_ids_in_layout()
            .into_iter()
            .filter(|(_, i)| matches!(f.inst(*i).op, Op::Load(_)))
            .map(|(_, i)| i)
            .collect();
        assert_eq!(loads.len(), 2);
        let (s0, s1) = (start[&loads[0]], start[&loads[1]]);
        assert!(s1 > s0, "loads issue in order, one per cycle: {s0} vs {s1}");
    }

    #[test]
    fn divider_is_serial() {
        let src = r#"func @f(i32, i32) -> i32 {
bb0:
  %0 = sdiv i32 %a0, 3:i32
  %1 = sdiv i32 %a1, 5:i32
  %2 = add i32 %0, %1
  ret %2
}
"#;
        let (m, s) = sched(src, &HlsOptions::default());
        let b = &s.funcs[0].blocks[0];
        let start: HashMap<InstId, u32> = b.ops.iter().copied().collect();
        let f = &m.funcs[0];
        let divs: Vec<InstId> = f
            .inst_ids_in_layout()
            .into_iter()
            .filter(|(_, i)| matches!(f.inst(*i).op, Op::Bin(twill_ir::BinOp::SDiv, _, _)))
            .map(|(_, i)| i)
            .collect();
        let gap = start[&divs[1]].abs_diff(start[&divs[0]]);
        assert!(gap >= twill_ir::cost::HW_DIV_LATENCY, "serial divider: gap={gap}");
    }

    #[test]
    fn pipelining_assigns_ii_to_simple_loop() {
        let src = r#"func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %s = phi i32 [bb0: 0:i32], [bb1: %ns]
  %x = mul i32 %i, %i
  %y = xor i32 %x, 255:i32
  %z = add i32 %y, 13:i32
  %ns = add i32 %s, %z
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %s
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        let body = &s.funcs[0].blocks[1];
        assert!(body.ii.is_some(), "loop body should pipeline");
        assert!(body.ii.unwrap() < body.depth);
        // Disabled => no II.
        let (_, s2) = sched(src, &HlsOptions { loop_pipelining: false, ..Default::default() });
        assert!(s2.funcs[0].blocks[1].ii.is_none());
    }

    #[test]
    fn rom_loads_do_not_serialize() {
        // Loads from a constant global are per-thread ROMs: latency 1, no
        // shared-bus serialization, so two independent ROM reads issue in
        // the same state.
        let src = r#"global @tbl size=16 const [01 00 00 00 02 00 00 00 03 00 00 00 04 00 00 00]
func @f(i32, i32) -> i32 {
bb0:
  %p = gaddr @tbl
  %q0 = gep %p, %a0, 4
  %q1 = gep %p, %a1, 4
  %0 = load i32 %q0
  %1 = load i32 %q1
  %2 = add i32 %0, %1
  ret %2
}
"#;
        let (m, s) = sched(src, &HlsOptions::default());
        let f = &m.funcs[0];
        let b = &s.funcs[0].blocks[0];
        let start: HashMap<InstId, u32> = b.ops.iter().copied().collect();
        let loads: Vec<InstId> = f
            .inst_ids_in_layout()
            .into_iter()
            .filter(|(_, i)| matches!(f.inst(*i).op, Op::Load(_)))
            .map(|(_, i)| i)
            .collect();
        assert_eq!(loads.len(), 2);
        assert_eq!(start[&loads[0]], start[&loads[1]], "independent ROM reads share a state");
    }

    #[test]
    fn rom_load_faster_than_ram_load() {
        let rom = r#"global @tbl size=8 const [07 00 00 00 09 00 00 00]
func @f(i32) -> i32 {
bb0:
  %p = gaddr @tbl
  %q = gep %p, %a0, 4
  %0 = load i32 %q
  %1 = add i32 %0, 1:i32
  ret %1
}
"#;
        let ram = rom.replace(" const", "");
        let (_, sr) = sched(rom, &HlsOptions::default());
        let (_, sw) = sched(&ram, &HlsOptions::default());
        assert!(
            sr.funcs[0].blocks[0].depth < sw.funcs[0].blocks[0].depth,
            "ROM read ({}) should beat bus read ({})",
            sr.funcs[0].blocks[0].depth,
            sw.funcs[0].blocks[0].depth
        );
    }

    #[test]
    fn multiplier_limit_spreads_issues() {
        // Five independent multiplies: with one DSP they spread over five
        // cycles; with the default four they need at most two.
        let src = r#"func @f(i32, i32) -> i32 {
bb0:
  %0 = mul i32 %a0, 3:i32
  %1 = mul i32 %a0, 5:i32
  %2 = mul i32 %a0, 7:i32
  %3 = mul i32 %a1, 11:i32
  %4 = mul i32 %a1, 13:i32
  %5 = add i32 %0, %1
  %6 = add i32 %2, %3
  %7 = add i32 %5, %6
  %8 = add i32 %7, %4
  ret %8
}
"#;
        let one = HlsOptions { multipliers: 1, ..Default::default() };
        let (m, s1) = sched(src, &one);
        let (_, s4) = sched(src, &HlsOptions::default());
        let muls = |s: &ModuleSchedule| -> Vec<u32> {
            let f = &m.funcs[0];
            let start: HashMap<InstId, u32> = s.funcs[0].blocks[0].ops.iter().copied().collect();
            f.inst_ids_in_layout()
                .into_iter()
                .filter(|(_, i)| matches!(f.inst(*i).op, Op::Bin(twill_ir::BinOp::Mul, _, _)))
                .map(|(_, i)| start[&i])
                .collect()
        };
        let starts1 = muls(&s1);
        let mut uniq1 = starts1.clone();
        uniq1.sort();
        uniq1.dedup();
        assert_eq!(uniq1.len(), 5, "one DSP => all five muls in distinct cycles: {starts1:?}");
        let starts4 = muls(&s4);
        let mut uniq4 = starts4.clone();
        uniq4.sort();
        uniq4.dedup();
        assert!(uniq4.len() <= 2, "four DSPs => at most two issue cycles: {starts4:?}");
    }

    #[test]
    fn res_mii_counts_memory_traffic() {
        // Three RAM ops per iteration => ResMII >= 6 (2 bus cycles each).
        let src = r#"global @a size=64 []
global @b size=64 []
func @f(i32) -> void {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %pa = gaddr @a
  %pb = gaddr @b
  %qa = gep %pa, %i, 4
  %qb = gep %pb, %i, 4
  %0 = load i32 %qa
  %1 = load i32 %qb
  %2 = add i32 %0, %1
  store i32 %2, %qa
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        let body = &s.funcs[0].blocks[1];
        if let Some(ii) = body.ii {
            assert!(ii >= 6, "3 memory ops need >= 6 bus cycles per iteration, got {ii}");
        }
    }

    #[test]
    fn rec_mii_grows_with_carried_chain() {
        // A loop-carried multiply chain forces a larger II than a pure
        // counter recurrence.
        let cheap = r#"func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#;
        let heavy = r#"func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %s = phi i32 [bb0: 1:i32], [bb1: %ns]
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %m0 = mul i32 %s, 3:i32
  %m1 = mul i32 %m0, 5:i32
  %ns = add i32 %m1, 1:i32
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %s
}
"#;
        let (_, sc) = sched(cheap, &HlsOptions::default());
        let (_, sh) = sched(heavy, &HlsOptions::default());
        let ii_of =
            |s: &ModuleSchedule| s.funcs[0].blocks[1].ii.unwrap_or(s.funcs[0].blocks[1].depth);
        assert!(
            ii_of(&sh) > ii_of(&sc),
            "carried mul chain must raise II: cheap={} heavy={}",
            ii_of(&sc),
            ii_of(&sh)
        );
    }

    #[test]
    fn peak_units_reflect_parallel_adders() {
        let src = r#"func @f(i32, i32, i32, i32) -> i32 {
bb0:
  %0 = add i32 %a0, %a1
  %1 = add i32 %a2, %a3
  %2 = add i32 %0, %1
  ret %2
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        assert!(
            s.funcs[0].peak_units.add >= 2,
            "two adds share state 0: {:?}",
            s.funcs[0].peak_units
        );
    }

    #[test]
    fn live_values_count_cross_state_results() {
        // A value consumed in a later block must be registered.
        let src = r#"func @f(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 3:i32
  %c = cmp sgt %a0, 0:i32
  condbr %c, bb1, bb2
bb1:
  %1 = mul i32 %0, %0
  ret %1
bb2:
  ret %0
}
"#;
        let (_, s) = sched(src, &HlsOptions::default());
        assert!(s.funcs[0].live_values >= 1, "{}", s.funcs[0].live_values);
    }

    #[test]
    fn multiplier_limit_never_loses_ops() {
        // Resource constraints reorder issues but must schedule every op.
        let src = r#"func @f(i32) -> i32 {
bb0:
  %0 = mul i32 %a0, 3:i32
  %1 = mul i32 %a0, 5:i32
  %2 = sdiv i32 %0, 3:i32
  %3 = sdiv i32 %1, 5:i32
  %4 = add i32 %2, %3
  ret %4
}
"#;
        for mults in [1, 2, 4] {
            let opts = HlsOptions { multipliers: mults, ..Default::default() };
            let (m, s) = sched(src, &opts);
            let n_sched = s.funcs[0].blocks[0].ops.len();
            let n_insts = m.funcs[0].block(twill_ir::BlockId(0)).insts.len();
            assert_eq!(n_sched, n_insts, "multipliers={mults}");
        }
    }

    #[test]
    fn schedules_all_chstone_benchmarks() {
        for b in chstone::all() {
            let m = chstone::compile_and_prepare(&b);
            let s = schedule_module(&m, &HlsOptions::default());
            assert!(s.total_states() > 0, "{}", b.name);
            for fs in &s.funcs {
                for bs in &fs.blocks {
                    assert!(bs.depth >= 1);
                    if let Some(ii) = bs.ii {
                        assert!(ii >= 1 && ii < bs.depth);
                    }
                }
            }
        }
    }
}
