//! Power model reproducing thesis Fig 6.1.
//!
//! The thesis measures (with Xilinx power simulation) that the pure-HW
//! translation draws the least power, Twill sits in the middle, and the
//! pure-Microblaze build draws the most — "the majority of the power
//! consumption comes from the multiple Phase-Lock Loops (PLLs)" the soft
//! core needs. The model:
//!
//! `P = P_static + [PLLs if a CPU is configured] + CPU_dynamic·util +
//!      LUT_dynamic·luts·activity + DSP_dynamic·dsps·activity`

use crate::area::AreaReport;

/// Milliwatt constants (calibrated to give Fig 6.1's ordering and rough
/// ratios; absolute values are not the object of comparison).
pub const P_STATIC_MW: f64 = 380.0;
/// The Microblaze clocking network: several PLLs/DCMs (thesis: dominant).
pub const P_PLL_MW: f64 = 520.0;
/// Microblaze core dynamic power at full utilization.
pub const P_MB_DYN_MW: f64 = 210.0;
/// Dynamic power per kLUT at activity 1.0.
pub const P_PER_KLUT_MW: f64 = 14.0;
/// Dynamic power per DSP block at activity 1.0.
pub const P_PER_DSP_MW: f64 = 2.2;

/// One configuration to evaluate.
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// Synthesized logic (HW threads + runtime), zero for pure SW.
    pub area: AreaReport,
    /// Whether a Microblaze (and its PLLs) is instantiated.
    pub has_cpu: bool,
    /// Fraction of time the CPU is executing (vs stalled/idle).
    pub cpu_utilization: f64,
    /// Average toggle activity of the FPGA logic (0..1).
    pub logic_activity: f64,
}

/// Total power in milliwatts.
pub fn power_mw(c: &PowerConfig) -> f64 {
    let mut p = P_STATIC_MW;
    if c.has_cpu {
        p += P_PLL_MW;
        p += P_MB_DYN_MW * c.cpu_utilization.clamp(0.0, 1.0);
    }
    p += P_PER_KLUT_MW * (c.area.luts as f64 / 1000.0) * c.logic_activity.clamp(0.0, 1.0);
    p += P_PER_DSP_MW * c.area.dsps as f64 * c.logic_activity.clamp(0.0, 1.0);
    p
}

/// The three experiment configurations of Fig 6.1 for one benchmark.
pub fn fig_6_1_configs(
    pure_hw_area: AreaReport,
    twill_hw_area: AreaReport,
    twill_cpu_util: f64,
) -> (PowerConfig, PowerConfig, PowerConfig) {
    let sw = PowerConfig {
        area: AreaReport::default(),
        has_cpu: true,
        cpu_utilization: 1.0,
        logic_activity: 0.0,
    };
    let hw = PowerConfig {
        area: pure_hw_area,
        has_cpu: false,
        cpu_utilization: 0.0,
        logic_activity: 0.22,
    };
    let twill = PowerConfig {
        area: twill_hw_area,
        has_cpu: true,
        cpu_utilization: twill_cpu_util,
        logic_activity: 0.22,
    };
    (sw, hw, twill)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_6_1_ordering_holds() {
        // Typical benchmark: pure HW ~12k LUTs, Twill HW threads ~7k + 3k
        // runtime, CPU 25% busy in the hybrid.
        let (sw, hw, twill) = fig_6_1_configs(
            AreaReport { luts: 12_000, dsps: 8, brams: 10 },
            AreaReport { luts: 10_000, dsps: 14, brams: 2 },
            0.25,
        );
        let p_sw = power_mw(&sw);
        let p_hw = power_mw(&hw);
        let p_twill = power_mw(&twill);
        assert!(p_hw < p_twill, "pure HW must be lowest: {p_hw} vs {p_twill}");
        assert!(p_twill < p_sw, "Twill below pure SW: {p_twill} vs {p_sw}");
    }

    #[test]
    fn pll_dominates_cpu_configs() {
        let idle_cpu = PowerConfig {
            area: AreaReport::default(),
            has_cpu: true,
            cpu_utilization: 0.0,
            logic_activity: 0.0,
        };
        let no_cpu = PowerConfig {
            area: AreaReport { luts: 20_000, dsps: 20, brams: 0 },
            has_cpu: false,
            cpu_utilization: 0.0,
            logic_activity: 0.3,
        };
        // Even an idle CPU config outdraws a big pure-logic design: the
        // PLLs dominate (thesis §6.3).
        assert!(power_mw(&idle_cpu) > power_mw(&no_cpu));
    }

    #[test]
    fn power_monotone_in_area_and_util() {
        let base = PowerConfig {
            area: AreaReport { luts: 5000, dsps: 2, brams: 0 },
            has_cpu: true,
            cpu_utilization: 0.3,
            logic_activity: 0.2,
        };
        let more_area = PowerConfig { area: AreaReport { luts: 9000, dsps: 2, brams: 0 }, ..base };
        let more_util = PowerConfig { cpu_utilization: 0.9, ..base };
        assert!(power_mw(&more_area) > power_mw(&base));
        assert!(power_mw(&more_util) > power_mw(&base));
    }
}
