//! In-tree stand-in for the `criterion` crate (API-compatible subset).
//!
//! The build environment is offline, so external crates cannot be fetched.
//! Benches keep the criterion surface (`criterion_group!`/
//! `criterion_main!`, `bench_function`, groups, `iter`/`iter_batched`,
//! `Throughput`) but measure with a plain wall-clock harness: a short
//! warmup, then `sample_size` timed samples, reporting min/mean/max. No
//! statistics engine, no HTML reports — numbers on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warmup + forces lazy setup
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let mut line = format!(
        "{name:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        b.samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// `criterion_group!` — both the struct-ish form with `config =` and the
/// positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
