//! In-tree stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment is offline, so external crates cannot be fetched.
//! The test suite only needs a seedable, deterministic generator with
//! `gen_range`/`gen_bool`/`gen`; this module provides exactly that on top
//! of SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
//! Generators"). Streams are stable across platforms and releases — tests
//! that hard-code seeds keep their corpora forever.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One scramble round so nearby seeds diverge immediately.
        let mut r = rngs::StdRng::from_state(seed ^ 0xD1B54A32D192ED03);
        let _ = r.next_u64();
        r
    }
}

/// Types `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types `Rng::gen` can produce.
pub trait Standard {
    fn generate(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Standard for bool {
    fn generate(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen<T: Standard>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            let u = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
