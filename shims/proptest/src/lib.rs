//! In-tree stand-in for the `proptest` crate (API-compatible subset).
//!
//! The build environment is offline, so external crates cannot be fetched.
//! This implements the parts the test suite uses — `proptest!`,
//! `prop_assert*`, `prop_assume!`, `prop_oneof!`, `Just`, `any`, integer
//! ranges, tuples, `collection::vec`, `prop_map`/`prop_flat_map`, and a
//! case runner — with deterministic per-case seeding instead of shrinking:
//! a failing case panics with its case index and seed so it can be
//! replayed exactly by re-running the test.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector of `size` elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Vec<S::Value> {
            let n = rng.below_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `proptest!` macro: one or more `#[test] fn name(pat in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                |__twill_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __twill_rng);)+
                    let __twill_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __twill_result
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_oneof!` — choose uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// `prop_assume!` — discard the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i64..=5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..4, any::<i8>()), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (idx, _) in &v {
                prop_assert!(*idx < 4);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u8>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1u32), Just(5), Just(9)],
                              (n, v) in (1usize..4).prop_flat_map(|n| {
                                  (Just(n), crate::collection::vec(0u32..10, n))
                              })) {
            prop_assert!(x == 1 || x == 5 || x == 9);
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "minimal-ish failing case")]
    fn failing_case_panics_with_seed() {
        crate::test_runner::run_cases("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
