//! Case runner and deterministic RNG.

/// Runner configuration. Only the knobs the test suite touches.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up if this many cases in a row are rejected by `prop_assume!`.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Deterministic SplitMix64 stream. Each case gets its own seed derived
/// from (test name, case index), so failures replay bit-for-bit.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E3779B97F4A7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]` (inclusive), for values that fit in i128.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform in `[lo, hi]` for unsigned bounds.
    pub fn below_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.in_range(lo as i128, hi as i128) as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive `body` until `config.cases` cases pass, a case fails, or too many
/// consecutive cases are rejected.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name.as_bytes());
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let mut consecutive_rejects: u32 = 0;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0xA24BAED4963EE407);
        let mut rng = TestRng::from_seed(seed);
        match body(&mut rng) {
            Ok(()) => {
                passed += 1;
                consecutive_rejects = 0;
            }
            Err(TestCaseError::Reject(_)) => {
                consecutive_rejects += 1;
                if consecutive_rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{test_name}': too many consecutive rejects \
                         ({consecutive_rejects}) — assumption is unsatisfiable"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' found a minimal-ish failing case \
                     (case {attempt}, seed {seed:#x}):\n{msg}"
                );
            }
        }
        attempt += 1;
    }
}
