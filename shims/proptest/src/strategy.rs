//! Value-generation strategies: the composable core of the shim.

use crate::test_runner::TestRng;

/// A way of producing values of `Self::Value` from a deterministic RNG.
///
/// Unlike real proptest there is no shrinking and no value tree — a
/// strategy is just a generator. That keeps the trait object-safe-free and
/// the combinators trivial, while preserving the property-test interface.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy so heterogeneous strategies can share a
    /// `prop_oneof!` / `Union` (mirrors real proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among homogeneous strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below_inclusive(0, self.options.len() as u64 - 1) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Integer ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range(*self.start() as i128, *self.end() as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as i128, <$t>::MAX as i128) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward structurally interesting values the way real
                // proptest's integer strategies weight edge cases.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
